(* The serve loop: admission with backpressure, same-fingerprint
   batching over a prepared-flow cache, per-job fault arming, watchdog
   deadlines, retry with seeded backoff, graceful SIGTERM drain.

   Single-threaded by design: one main loop reads requests (a
   select-based line reader, so SIGTERM interrupts a blocking read via
   EINTR), admits them into the bounded queue, and executes one batch at
   a time over the shared Parallel.Pool. The only extra domain is the
   lazily-spawned watchdog, which polls the armed deadline and posts a
   Robust.Cancel request — the job then aborts at its next cooperative
   checkpoint inside the solver loops, taking the pool's normal
   first-exception containment path. One job can therefore fail, time
   out, or carry an armed fault without perturbing any other job. *)

module Flow = Postplace.Flow

(* --- select-based line reader -------------------------------------------- *)

module Reader = struct
  type t = {
    fd : Unix.file_descr;
    buf : Buffer.t;                    (* partial last line *)
    chunk : bytes;
    lines : string Stdlib.Queue.t;     (* complete lines, FIFO *)
    mutable eof : bool;
  }

  let create fd =
    { fd; buf = Buffer.create 256; chunk = Bytes.create 4096;
      lines = Stdlib.Queue.create (); eof = false }

  let eof t = t.eof && Stdlib.Queue.is_empty t.lines

  (* [`Line l | `Eof | `Timeout | `Interrupted]; [`Interrupted] means a
     signal arrived mid-wait — the caller re-checks its stop flag. *)
  let rec next t ~timeout_s =
    match Stdlib.Queue.take_opt t.lines with
    | Some l -> `Line l
    | None ->
      if t.eof then `Eof
      else begin
        match Unix.select [ t.fd ] [] [] timeout_s with
        | [], _, _ -> `Timeout
        | _ -> (
          match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
          | 0 ->
            t.eof <- true;
            let rest = Buffer.contents t.buf in
            Buffer.clear t.buf;
            if rest <> "" then `Line rest else `Eof
          | n ->
            for i = 0 to n - 1 do
              match Bytes.get t.chunk i with
              | '\n' ->
                Stdlib.Queue.add (Buffer.contents t.buf) t.lines;
                Buffer.clear t.buf
              | c -> Buffer.add_char t.buf c
            done;
            next t ~timeout_s
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Interrupted)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Interrupted
      end
end

(* --- deadline watchdog ---------------------------------------------------- *)

(* One polling domain, spawned on the first job that carries a deadline.
   [arm]/[disarm] and the watchdog's firing are serialized by [m]: after
   [disarm] returns, no firing for the old deadline can still be in
   flight, so the caller can safely clear the Cancel slot without racing
   a stale request into the next job. *)
module Watchdog = struct
  type t = {
    m : Mutex.t;
    mutable armed : (float * string * float * float) option;
    (* (absolute deadline, job_id, deadline_ms, t0) *)
    mutable stop : bool;
    mutable domain : unit Domain.t option;
    poll_s : float;
  }

  let create ~poll_s =
    { m = Mutex.create (); armed = None; stop = false; domain = None;
      poll_s }

  let rec loop t =
    let stop =
      Mutex.protect t.m (fun () ->
          (match t.armed with
           | Some (at, job_id, deadline_ms, t0)
             when Unix.gettimeofday () >= at ->
             Robust.Cancel.request
               (Robust.Error.Deadline_exceeded
                  { job_id;
                    elapsed_ms = (Unix.gettimeofday () -. t0) *. 1e3;
                    deadline_ms });
             t.armed <- None
           | _ -> ());
          t.stop)
    in
    if not stop then begin
      Unix.sleepf t.poll_s;
      loop t
    end

  let arm t ~job_id ~t0 ~deadline_ms =
    Mutex.protect t.m (fun () ->
        t.armed <- Some (t0 +. (deadline_ms /. 1e3), job_id, deadline_ms, t0);
        if t.domain = None then
          t.domain <- Some (Domain.spawn (fun () -> loop t)))

  let disarm t = Mutex.protect t.m (fun () -> t.armed <- None)

  let shutdown t =
    Mutex.protect t.m (fun () -> t.stop <- true);
    Option.iter Domain.join t.domain;
    t.domain <- None
end

(* --- configuration and summary -------------------------------------------- *)

type config = {
  queue_capacity : int;
  policy : Policy.t;
  flow_slots : int;
  watchdog_poll_ms : float;
  ledger : string option;
  handle_sigterm : bool;
}

let default_config =
  { queue_capacity = 64; policy = Policy.default; flow_slots = 4;
    watchdog_poll_ms = 2.0; ledger = None; handle_sigterm = true }

type summary = {
  accepted : int;
  rejected : int;
  invalid : int;
  succeeded : int;
  failed : int;
  deadline_exceeded : int;
  retries : int;
  batches : int;
  drained_on_signal : bool;
}

let summary_json s =
  Obs.Json.Obj
    [ ("accepted", Obs.Json.Int s.accepted);
      ("rejected", Obs.Json.Int s.rejected);
      ("invalid", Obs.Json.Int s.invalid);
      ("succeeded", Obs.Json.Int s.succeeded);
      ("failed", Obs.Json.Int s.failed);
      ("deadline_exceeded", Obs.Json.Int s.deadline_exceeded);
      ("retries", Obs.Json.Int s.retries);
      ("batches", Obs.Json.Int s.batches);
      ("drained_on_signal", Obs.Json.Bool s.drained_on_signal) ]

(* --- the server ----------------------------------------------------------- *)

type counts = {
  mutable c_accepted : int;
  mutable c_rejected : int;
  mutable c_invalid : int;
  mutable c_succeeded : int;
  mutable c_failed : int;
  mutable c_deadline : int;
  mutable c_retries : int;
  mutable c_batches : int;
}

let take n l = List.filteri (fun i _ -> i < n) l

let run ?(config = default_config) ~input ~output () =
  let stop = Atomic.make false in
  let prev_handler =
    if config.handle_sigterm then
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> Atomic.set stop true)))
    else None
  in
  let reader = Reader.create input in
  let queue = Queue.create ~capacity:config.queue_capacity in
  let wd = Watchdog.create ~poll_s:(config.watchdog_poll_ms /. 1e3) in
  let counts =
    { c_accepted = 0; c_rejected = 0; c_invalid = 0; c_succeeded = 0;
      c_failed = 0; c_deadline = 0; c_retries = 0; c_batches = 0 }
  in
  (* fingerprint -> (flow, base evaluation), MRU. Populated only by a
     fully successful prepare+evaluate, so a fault- or deadline-poisoned
     job can never cache a tainted flow for its batch mates. *)
  let cache : (string * (Flow.t * Flow.evaluation)) list ref = ref [] in
  let lineno = ref 0 in
  let respond json =
    output_string output (Obs.Json.to_string json ^ "\n");
    flush output
  in
  let depth_gauge () =
    Obs.Metrics.gauge "serve.queue.depth" (float_of_int (Queue.depth queue))
  in
  let count_outcome outcome =
    Obs.Metrics.count "serve.jobs" ~labels:[ ("outcome", outcome) ]
  in
  let ledger_append record =
    match config.ledger with
    | None -> ()
    | Some path -> (
      try Obs.Ledger.append ~path record
      with e ->
        Printf.eprintf "serve: cannot append to ledger %s: %s\n" path
          (Printexc.to_string e))
  in
  let job_record ?job_id ?config:(cfg = []) ?peak_rise_k ?plan_hash ?error
      ~fingerprint ~elapsed_ms ~outcome ~exit_code () =
    ledger_append
      (Obs.Ledger.make_record ~command:"serve.job" ?job_id ~config:cfg
         ~phases_ms:[ ("job_ms", elapsed_ms) ] ?peak_rise_k ?plan_hash
         ?error ~fingerprint ~outcome ~exit_code ())
  in
  let response ~id ~outcome ~exit_code ~attempts ~fingerprint ?result
      ?error ~elapsed_ms () =
    Obs.Json.Obj
      ([ ("id", Obs.Json.String id);
         ("outcome", Obs.Json.String outcome);
         ("exit_code", Obs.Json.Int exit_code);
         ("attempts", Obs.Json.Int attempts);
         ("fingerprint", Obs.Json.String fingerprint) ]
       @ (match result with Some r -> [ ("result", r) ] | None -> [])
       @ (match error with
          | Some e -> [ ("error", Obs.Json.String e) ]
          | None -> [])
       @ [ ("elapsed_ms", Obs.Json.Float elapsed_ms) ])
  in
  (* admission: parse, validate, push-or-reject. Rejections and invalid
     requests are answered immediately — they never occupy a slot. *)
  let handle_line line =
    incr lineno;
    match Job.request_of_line line with
    | Error msg ->
      counts.c_invalid <- counts.c_invalid + 1;
      count_outcome "invalid";
      let id = Printf.sprintf "line-%d" !lineno in
      respond
        (response ~id ~outcome:"invalid" ~exit_code:2 ~attempts:0
           ~fingerprint:"" ~error:msg ~elapsed_ms:0.0 ());
      job_record ~job_id:id ~fingerprint:"" ~elapsed_ms:0.0 ~error:msg
        ~outcome:"invalid" ~exit_code:2 ()
    | Ok req ->
      if Queue.try_push queue req then begin
        counts.c_accepted <- counts.c_accepted + 1;
        depth_gauge ()
      end
      else begin
        counts.c_rejected <- counts.c_rejected + 1;
        count_outcome "rejected";
        let e =
          Robust.Error.Queue_full
            { job_id = req.Job.id; depth = Queue.depth queue;
              capacity = config.queue_capacity }
        in
        let code = Robust.Error.exit_code e in
        respond
          (response ~id:req.Job.id ~outcome:"rejected" ~exit_code:code
             ~attempts:0 ~fingerprint:(Job.fingerprint req)
             ~error:(Robust.Error.to_string e) ~elapsed_ms:0.0 ());
        job_record ~job_id:req.Job.id ~config:(Job.config_json req)
          ~fingerprint:(Job.fingerprint req) ~elapsed_ms:0.0
          ~error:(Robust.Error.to_string e) ~outcome:"rejected"
          ~exit_code:code ()
      end
  in
  (* read everything immediately available; optionally block (briefly)
     for the first line so an idle server still notices SIGTERM *)
  let fill ~block =
    let rec go timeout =
      if Atomic.get stop then ()
      else
        match Reader.next reader ~timeout_s:timeout with
        | `Line l ->
          if String.trim l <> "" then handle_line l;
          go 0.0
        | `Timeout | `Interrupted | `Eof -> ()
    in
    go (if block then 0.25 else 0.0)
  in
  let lookup_flow req fp =
    match List.assoc_opt fp !cache with
    | Some v ->
      Obs.Metrics.count "serve.flow_cache.hits";
      cache := (fp, v) :: List.remove_assoc fp !cache;
      v
    | None ->
      Obs.Metrics.count "serve.flow_cache.misses";
      let flow = Job.prepare_flow req in
      let base = Flow.evaluate flow flow.Flow.base_placement in
      let v = (flow, base) in
      cache := take config.flow_slots ((fp, v) :: !cache);
      v
  in
  let execute_job (req : Job.request) =
    let t0 = Unix.gettimeofday () in
    let fp = Job.fingerprint req in
    let max_retries =
      match req.Job.max_retries with
      | Some r -> r
      | None -> config.policy.Policy.max_retries
    in
    let rec attempt_loop attempt =
      Robust.Cancel.clear ();
      (* faults model a transient poisoning of one job: armed before the
         first attempt only, so a retry runs clean *)
      if attempt = 1 then
        List.iter
          (fun (f, n) -> Robust.Faults.arm ~times:n f)
          req.Job.faults;
      Option.iter
        (fun d -> Watchdog.arm wd ~job_id:req.Job.id ~t0 ~deadline_ms:d)
        req.Job.deadline_ms;
      let res =
        match
          let flow, base = lookup_flow req fp in
          Job.execute ~flow ~base req
        with
        | r -> Ok r
        | exception Robust.Error.Error e -> Error e
        | exception e ->
          Error (Robust.Error.Worker_failed { detail = Printexc.to_string e })
      in
      Watchdog.disarm wd;
      Robust.Cancel.clear ();
      if req.Job.faults <> [] then Robust.Faults.clear ();
      match res with
      | Ok r -> (Ok r, attempt)
      | Error e ->
        if Policy.retryable e && attempt <= max_retries then begin
          counts.c_retries <- counts.c_retries + 1;
          Obs.Metrics.count "serve.retries";
          Unix.sleepf
            (Policy.delay_ms config.policy ~job_id:req.Job.id ~attempt
             /. 1e3);
          attempt_loop (attempt + 1)
        end
        else (Error e, attempt)
    in
    let result, attempts = attempt_loop 1 in
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    Obs.Metrics.observe "serve.job.latency_ms"
      ~labels:[ ("technique", Job.technique_name req.Job.technique) ]
      elapsed_ms;
    let cfg = Job.config_json req @ [ ("attempts", Obs.Json.Int attempts) ] in
    match result with
    | Ok (r : Job.executed) ->
      counts.c_succeeded <- counts.c_succeeded + 1;
      count_outcome "ok";
      respond
        (response ~id:req.Job.id ~outcome:"ok" ~exit_code:0 ~attempts
           ~fingerprint:fp ~result:r.Job.result_json ~elapsed_ms ());
      job_record ~job_id:req.Job.id ~config:cfg
        ~peak_rise_k:r.Job.peak_rise_k ?plan_hash:r.Job.plan_hash
        ~fingerprint:fp ~elapsed_ms ~outcome:"ok" ~exit_code:0 ()
    | Error e ->
      let outcome =
        match e with
        | Robust.Error.Deadline_exceeded _ ->
          counts.c_deadline <- counts.c_deadline + 1;
          "deadline_exceeded"
        | _ ->
          counts.c_failed <- counts.c_failed + 1;
          "failed"
      in
      count_outcome outcome;
      let code = Robust.Error.exit_code e in
      respond
        (response ~id:req.Job.id ~outcome ~exit_code:code ~attempts
           ~fingerprint:fp ~error:(Robust.Error.to_string e) ~elapsed_ms ());
      job_record ~job_id:req.Job.id ~config:cfg ~fingerprint:fp ~elapsed_ms
        ~error:(Robust.Error.to_string e) ~outcome ~exit_code:code ()
  in
  let process_batch () =
    match Queue.pop_batch queue ~key:Job.fingerprint with
    | [] -> ()
    | batch ->
      counts.c_batches <- counts.c_batches + 1;
      Obs.Metrics.count "serve.batches";
      Obs.Metrics.observe "serve.batch.size"
        (float_of_int (List.length batch));
      depth_gauge ();
      List.iter execute_job batch
  in
  let rec loop () =
    if Atomic.get stop then ()
    else begin
      fill ~block:false;
      if not (Queue.is_empty queue) then begin
        process_batch ();
        loop ()
      end
      else if Reader.eof reader then ()
      else begin
        fill ~block:true;
        loop ()
      end
    end
  in
  loop ();
  let drained_on_signal = Atomic.get stop in
  (* graceful drain: stop accepting, finish everything already admitted *)
  while not (Queue.is_empty queue) do
    process_batch ()
  done;
  Watchdog.shutdown wd;
  (match prev_handler with
   | Some h -> Sys.set_signal Sys.sigterm h
   | None -> ());
  { accepted = counts.c_accepted; rejected = counts.c_rejected;
    invalid = counts.c_invalid; succeeded = counts.c_succeeded;
    failed = counts.c_failed; deadline_exceeded = counts.c_deadline;
    retries = counts.c_retries; batches = counts.c_batches;
    drained_on_signal }
