(* Bounded job queue with same-key batch extraction.

   The server is single-threaded (one main loop), but the queue still
   takes a mutex so depth reads from tests or future reader domains are
   always consistent. Capacity is a hard bound: [try_push] refuses work
   instead of buffering without limit — backpressure is the caller's
   contract, not an afterthought. *)

type 'a t = {
  m : Mutex.t;
  capacity : int;
  mutable rev_items : 'a list;  (* newest first; reversed on pop *)
  mutable depth : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Queue.create: capacity must be >= 1";
  { m = Mutex.create (); capacity; rev_items = []; depth = 0 }

let capacity t = t.capacity

let depth t = Mutex.protect t.m (fun () -> t.depth)

let is_empty t = depth t = 0

let try_push t x =
  Mutex.protect t.m (fun () ->
      if t.depth >= t.capacity then false
      else begin
        t.rev_items <- x :: t.rev_items;
        t.depth <- t.depth + 1;
        true
      end)

let pop_batch t ~key =
  Mutex.protect t.m (fun () ->
      match List.rev t.rev_items with
      | [] -> []
      | oldest :: _ as all ->
        let k = key oldest in
        (* group every queued item sharing the oldest item's key, not
           just a contiguous prefix — one prepared flow then serves the
           whole batch, however the arrivals interleaved *)
        let batch, rest = List.partition (fun x -> key x = k) all in
        t.rev_items <- List.rev rest;
        t.depth <- t.depth - List.length batch;
        batch)
