(** The batch optimization server behind [thermoplace serve].

    Reads JSONL job requests ({!Job.request}) from a file descriptor,
    admits them into a bounded {!Queue} (rejecting with a structured
    [Robust.Error.Queue_full] when full — backpressure, not unbounded
    buffering), pops them in same-fingerprint batches so one prepared
    flow and its cached mesh/multigrid/blur state amortize across the
    batch, and writes one JSON response line per request to [output].

    Fault isolation is the contract: each job's armed faults, watchdog
    deadline and retry loop are scoped to that job alone. A failing,
    timed-out or fault-poisoned job produces one structured failure
    response and ledger record; every other job — including batch mates —
    completes bit-identically to a run without the poisoned job. The
    server itself exits its loop normally in both the EOF and SIGTERM
    cases; SIGTERM stops admission, drains everything already accepted,
    and is reported via [drained_on_signal]. *)

type config = {
  queue_capacity : int;       (** bounded admission queue (default 64) *)
  policy : Policy.t;          (** retry/backoff policy *)
  flow_slots : int;           (** prepared-flow MRU capacity (default 4) *)
  watchdog_poll_ms : float;   (** deadline poll period (default 2 ms) *)
  ledger : string option;     (** per-job ledger path; [None] disables *)
  handle_sigterm : bool;      (** install the SIGTERM drain handler *)
}

val default_config : config

type summary = {
  accepted : int;            (** admitted into the queue *)
  rejected : int;            (** refused with [Queue_full] *)
  invalid : int;             (** unparseable / invalid request lines *)
  succeeded : int;
  failed : int;              (** structured failures (faults, solver) *)
  deadline_exceeded : int;
  retries : int;             (** extra attempts across all jobs *)
  batches : int;             (** same-fingerprint batches executed *)
  drained_on_signal : bool;  (** SIGTERM received; queue drained anyway *)
}

val summary_json : summary -> Obs.Json.t

val run :
  ?config:config -> input:Unix.file_descr -> output:out_channel -> unit ->
  summary
(** Serve until EOF on [input] (or SIGTERM, when handled): every request
    line gets exactly one response line on [output] — [{"id", "outcome",
    "exit_code", "attempts", "fingerprint", "result"?, "error"?,
    "elapsed_ms"}] — and, when [config.ledger] is set, one ledger record
    (command ["serve.job"], [job_id] = request id). Outcomes: [ok],
    [failed], [deadline_exceeded], [rejected], [invalid]; [exit_code]
    uses the {!Robust.Error.exit_code} table (0 for ok, 2 for invalid).
    Metrics: [serve.queue.depth] gauge, [serve.jobs{outcome=...}]
    counters, [serve.job.latency_ms{technique=...}] histograms,
    [serve.batches], [serve.batch.size], [serve.retries],
    [serve.flow_cache.hits]/[.misses]. *)
