(** One serve job: JSONL request codec, batching fingerprint, execution.

    A request is one line of JSON:

    {v
    {"id":"job-1","test_set":"small","technique":"eri","seed":42,
     "cycles":200,"utilization":0.85,"precond":"mg","screen":"auto",
     "overhead":0.2,"rows":2,"deadline_ms":5000,"max_retries":2,
     "faults":"nan_power"}
    v}

    Only [id] is required; everything else has the CLI's defaults.
    Parsing is strict (unknown enum values, out-of-range numbers and
    malformed fault specs are admission errors) because an invalid
    request must be rejected before a flow is paid for, and is never
    retried. *)

type technique = Default | Eri | Hw | Optimize

val technique_name : technique -> string

type request = {
  id : string;
  test_set : string;             (** scattered | concentrated | small *)
  technique : technique;
  seed : int;
  cycles : int;
  utilization : float;
  precond : Thermal.Mesh.precond_choice option;
  precond_name : string;
  screen : Postplace.Flow.screen_choice;
  screen_name : string;
  guide : Postplace.Flow.guide_choice;
  (** optimizer candidate-ranking signal; ["peak"] (default) or
      ["gradient"] in the request JSON *)
  guide_name : string;
  overhead : float;              (** area budget fraction, [0, 4] *)
  rows : int option;             (** explicit row budget (eri/optimize) *)
  deadline_ms : float option;    (** whole-job wall-clock budget *)
  max_retries : int option;      (** overrides the server policy *)
  faults : (Robust.Faults.fault * int) list;
  (** armed before the job's first attempt, cleared after it settles —
      one fault-armed job degrades exactly one job *)
  faults_spec : string;          (** raw spec, echoed in records *)
}

val request_of_json : Obs.Json.t -> (request, string) result
val request_of_line : string -> (request, string) result
val request_to_json : request -> Obs.Json.t

val config_json : request -> (string * Obs.Json.t) list
(** Request echo (without [id]) for the per-job ledger record. *)

val fingerprint : request -> string
(** The batching identity — {!Postplace.Flow.config_fingerprint} over
    the request plus [set]/[cycles] extras. Computable without preparing
    a flow; equal fingerprints share one prepared flow and its cached
    base evaluation. *)

val prepare_flow : request -> Postplace.Flow.t
(** Prepare the flow for this request (same test-set mapping as the
    CLI). Expensive — the server caches the result per fingerprint. *)

type executed = {
  peak_rise_k : float;
  reduction_pct : float;
  area_overhead_pct : float;
  plan_hash : string option;   (** ERI/optimize committed-plan MD5 *)
  result_json : Obs.Json.t;
  (** deterministic result payload for the response line — a pure
      function of the request, never of timing or queue state *)
}

val execute :
  flow:Postplace.Flow.t -> base:Postplace.Flow.evaluation -> request ->
  executed
(** Run the request's technique against a prepared flow and its base
    evaluation. Raises [Robust.Error.Error] on structured failure (the
    server's retry/deadline machinery wraps this call). *)
