(* One serve job: the JSONL request codec, the pre-prepare fingerprint,
   and the (deterministic) technique execution against a prepared flow.

   A request is one line of JSON. Parsing is strict where it matters —
   enums, ranges, the fault spec — because an invalid request must fail
   fast at admission, never after a prepared flow was paid for, and must
   never be retried. *)

module Flow = Postplace.Flow

type technique = Default | Eri | Hw | Optimize

let technique_name = function
  | Default -> "default"
  | Eri -> "eri"
  | Hw -> "hw"
  | Optimize -> "optimize"

type request = {
  id : string;
  test_set : string;
  technique : technique;
  seed : int;
  cycles : int;
  utilization : float;
  precond : Thermal.Mesh.precond_choice option;
  precond_name : string;
  screen : Flow.screen_choice;
  screen_name : string;
  guide : Flow.guide_choice;
  guide_name : string;
  overhead : float;
  rows : int option;
  deadline_ms : float option;
  max_retries : int option;
  faults : (Robust.Faults.fault * int) list;
  faults_spec : string;
}

let ( let* ) = Result.bind

let technique_of_string = function
  | "default" -> Ok Default
  | "eri" -> Ok Eri
  | "hw" -> Ok Hw
  | "optimize" -> Ok Optimize
  | s -> Error (Printf.sprintf "unknown technique %S" s)

let precond_of_string = function
  | "auto" -> Ok None
  | "jacobi" -> Ok (Some Thermal.Mesh.Pc_jacobi)
  | "ssor" -> Ok (Some (Thermal.Mesh.Pc_ssor 1.2))
  | "mg" -> Ok (Some Thermal.Mesh.Pc_mg)
  | s -> Error (Printf.sprintf "unknown precond %S" s)

let screen_of_string = function
  | "auto" -> Ok Flow.Screen_auto
  | "fft" -> Ok Flow.Screen_fft
  | "exact" -> Ok Flow.Screen_exact
  | s -> Error (Printf.sprintf "unknown screen %S" s)

let guide_of_string = function
  | "peak" -> Ok Flow.Guide_peak
  | "gradient" -> Ok Flow.Guide_gradient
  | s -> Error (Printf.sprintf "unknown guide %S" s)

let test_sets = [ "scattered"; "concentrated"; "small" ]

let field_str json name ~default =
  match Obs.Json.member name json with
  | None -> Ok default
  | Some j -> (
    match Obs.Json.to_string_opt j with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S must be a string" name))

let field_int json name ~default =
  match Obs.Json.member name json with
  | None -> Ok default
  | Some j -> (
    match Obs.Json.to_int j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let field_float json name ~default =
  match Obs.Json.member name json with
  | None -> Ok default
  | Some j -> (
    match Obs.Json.to_float j with
    | Some v when Float.is_finite v -> Ok v
    | _ -> Error (Printf.sprintf "field %S must be a finite number" name))

let field_opt json name to_v ~kind =
  match Obs.Json.member name json with
  | None -> Ok None
  | Some j -> (
    match to_v j with
    | Some v -> Ok (Some v)
    | None -> Error (Printf.sprintf "field %S must be %s" name kind))

let request_of_json json =
  match json with
  | Obs.Json.Obj _ ->
    let* id =
      match Option.bind (Obs.Json.member "id" json) Obs.Json.to_string_opt with
      | Some s when String.trim s <> "" -> Ok s
      | Some _ -> Error "field \"id\" must be a non-empty string"
      | None -> Error "missing string field \"id\""
    in
    let fail fmt = Printf.ksprintf (fun m -> Error (id ^ ": " ^ m)) fmt in
    let* test_set = field_str json "test_set" ~default:"small" in
    let* () =
      if List.mem test_set test_sets then Ok ()
      else fail "unknown test_set %S" test_set
    in
    let* technique_s = field_str json "technique" ~default:"eri" in
    let* technique =
      Result.map_error (fun m -> id ^ ": " ^ m) (technique_of_string technique_s)
    in
    let* seed = field_int json "seed" ~default:42 in
    let* cycles = field_int json "cycles" ~default:1000 in
    let* () = if cycles >= 1 then Ok () else fail "cycles must be >= 1" in
    let* utilization = field_float json "utilization" ~default:0.85 in
    let* () =
      if utilization > 0.0 && utilization <= 1.0 then Ok ()
      else fail "utilization must be in (0, 1]"
    in
    let* precond_name = field_str json "precond" ~default:"auto" in
    let* precond =
      Result.map_error (fun m -> id ^ ": " ^ m) (precond_of_string precond_name)
    in
    let* screen_name = field_str json "screen" ~default:"auto" in
    let* screen =
      Result.map_error (fun m -> id ^ ": " ^ m) (screen_of_string screen_name)
    in
    let* guide_name = field_str json "guide" ~default:"peak" in
    let* guide =
      Result.map_error (fun m -> id ^ ": " ^ m) (guide_of_string guide_name)
    in
    let* overhead = field_float json "overhead" ~default:0.2 in
    let* () =
      if overhead >= 0.0 && overhead <= 4.0 then Ok ()
      else fail "overhead must be in [0, 4]"
    in
    let* rows = field_opt json "rows" Obs.Json.to_int ~kind:"an integer" in
    let* () =
      match rows with
      | Some r when r < 1 -> fail "rows must be >= 1"
      | _ -> Ok ()
    in
    let* deadline_ms =
      field_opt json "deadline_ms"
        (fun j ->
           match Obs.Json.to_float j with
           | Some v when Float.is_finite v -> Some v
           | _ -> None)
        ~kind:"a finite number"
    in
    let* () =
      match deadline_ms with
      | Some d when d <= 0.0 -> fail "deadline_ms must be > 0"
      | _ -> Ok ()
    in
    let* max_retries =
      field_opt json "max_retries" Obs.Json.to_int ~kind:"an integer"
    in
    let* () =
      match max_retries with
      | Some r when r < 0 -> fail "max_retries must be >= 0"
      | _ -> Ok ()
    in
    let* faults_spec = field_str json "faults" ~default:"" in
    let* faults =
      Result.map_error (fun m -> id ^ ": bad faults spec: " ^ m)
        (Robust.Faults.parse_spec faults_spec)
    in
    Ok
      { id; test_set; technique; seed; cycles; utilization; precond;
        precond_name; screen; screen_name; guide; guide_name; overhead;
        rows; deadline_ms; max_retries; faults; faults_spec }
  | _ -> Error "request is not a JSON object"

let request_of_line line =
  match Obs.Json.of_string line with
  | Error msg -> Error ("unparseable request: " ^ msg)
  | Ok json -> request_of_json json

let request_to_json r =
  let opt name f v = match v with Some v -> [ (name, f v) ] | None -> [] in
  Obs.Json.Obj
    ([ ("id", Obs.Json.String r.id);
       ("test_set", Obs.Json.String r.test_set);
       ("technique", Obs.Json.String (technique_name r.technique));
       ("seed", Obs.Json.Int r.seed);
       ("cycles", Obs.Json.Int r.cycles);
       ("utilization", Obs.Json.Float r.utilization);
       ("precond", Obs.Json.String r.precond_name);
       ("screen", Obs.Json.String r.screen_name);
       ("guide", Obs.Json.String r.guide_name);
       ("overhead", Obs.Json.Float r.overhead) ]
     @ opt "rows" (fun v -> Obs.Json.Int v) r.rows
     @ opt "deadline_ms" (fun v -> Obs.Json.Float v) r.deadline_ms
     @ opt "max_retries" (fun v -> Obs.Json.Int v) r.max_retries
     @ (if r.faults_spec = "" then []
        else [ ("faults", Obs.Json.String r.faults_spec) ]))

(* Echo of the request for the per-job ledger record's config object. *)
let config_json r =
  match request_to_json r with
  | Obs.Json.Obj fields -> List.remove_assoc "id" fields
  | _ -> assert false

(* The batching identity: everything [prepare_flow] consumes. Computable
   without preparing anything, which is the whole point — the server
   groups queued jobs on this string before paying for a flow. *)
let fingerprint r =
  Flow.config_fingerprint ~mesh_config:Thermal.Mesh.default_config
    ~precond:r.precond ~screen:r.screen ~guide:r.guide ~seed:r.seed
    ~utilization:r.utilization
    ~extra:[ ("set", r.test_set); ("cycles", string_of_int r.cycles) ]
    ()

(* Same test-set -> (benchmark, workload) mapping as the CLI. *)
let prepare_flow r =
  let prep bench workload =
    Flow.prepare ~seed:r.seed ~utilization:r.utilization
      ~sim_cycles:r.cycles ?precond:r.precond ~screen:r.screen
      ~guide:r.guide bench workload
  in
  match r.test_set with
  | "scattered" ->
    prep (Netgen.Benchmark.nine_unit ())
      (Logicsim.Workload.scattered_hotspots ~hot_units:[ 0; 4; 6; 8 ])
  | "concentrated" ->
    prep (Netgen.Benchmark.nine_unit ())
      (Logicsim.Workload.concentrated_hotspot ~hot_unit:2)
  | "small" ->
    prep (Netgen.Benchmark.small ())
      (Logicsim.Workload.make ~default:0.05 ~hot:[ (0, 0.5) ])
  | _ -> assert false (* request_of_json validated the enum *)

type executed = {
  peak_rise_k : float;
  reduction_pct : float;
  area_overhead_pct : float;
  plan_hash : string option;
  result_json : Obs.Json.t;
}

let plan_digest inserted_after =
  Digest.to_hex
    (Digest.string (String.concat "," (List.map string_of_int inserted_after)))

let derived_rows r (flow : Flow.t) =
  match r.rows with
  | Some rows -> rows
  | None ->
    max 1
      (int_of_float
         (r.overhead
          *. float_of_int
               flow.Flow.base_placement.Place.Placement.fp
                 .Place.Floorplan.num_rows))

(* Execute the technique. Everything in [result_json] is a deterministic
   function of the request (no wall-clock, no queue state), so CI can
   compare fault-armed and fault-free runs of the same file field by
   field and expect bit identity for unaffected jobs. *)
let execute ~(flow : Flow.t) ~(base : Flow.evaluation) r =
  let eval pl = Flow.evaluate flow pl in
  let finish ?plan ?(extra = []) pl =
    let ev = eval pl in
    let peak = ev.Flow.metrics.Thermal.Metrics.peak_rise_k in
    let reduction =
      Thermal.Metrics.reduction_pct ~before:base.Flow.metrics
        ~after:ev.Flow.metrics
    in
    let area =
      Postplace.Technique.area_overhead_pct ~base:base.Flow.placement pl
    in
    let plan_hash = Option.map plan_digest plan in
    let result_json =
      Obs.Json.Obj
        ([ ("technique", Obs.Json.String (technique_name r.technique));
           ("base_peak_rise_k",
            Obs.Json.Float base.Flow.metrics.Thermal.Metrics.peak_rise_k);
           ("peak_rise_k", Obs.Json.Float peak);
           ("peak_reduction_pct", Obs.Json.Float reduction);
           ("area_overhead_pct", Obs.Json.Float area) ]
         @ (match plan_hash with
            | Some h -> [ ("plan_hash", Obs.Json.String h) ]
            | None -> [])
         @ extra)
    in
    { peak_rise_k = peak; reduction_pct = reduction;
      area_overhead_pct = area; plan_hash; result_json }
  in
  match r.technique with
  | Default ->
    finish
      (Flow.apply_default flow
         ~utilization:(r.utilization /. (1.0 +. r.overhead)))
  | Eri ->
    let rows = derived_rows r flow in
    let res = Flow.apply_eri flow ~base ~rows in
    finish ~plan:res.Postplace.Technique.inserted_after
      res.Postplace.Technique.eri_placement
  | Hw ->
    let d =
      Flow.apply_default flow
        ~utilization:(r.utilization /. (1.0 +. r.overhead))
    in
    let de = eval d in
    finish (Flow.apply_hw flow ~on:de ())
  | Optimize ->
    let rows = match r.rows with Some rows -> rows | None -> 2 in
    let res = Postplace.Optimizer.greedy_rows flow ~rows () in
    finish
      ~plan:res.Postplace.Optimizer.plan.Postplace.Technique.inserted_after
      ~extra:
        [ ("evaluations", Obs.Json.Int res.Postplace.Optimizer.evaluations);
          ("blur_evaluations",
           Obs.Json.Int res.Postplace.Optimizer.blur_evaluations);
          ("adjoint_evaluations",
           Obs.Json.Int res.Postplace.Optimizer.adjoint_evaluations) ]
      res.Postplace.Optimizer.plan.Postplace.Technique.eri_placement
