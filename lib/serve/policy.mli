(** Retry policy: exponential backoff with seeded, deterministic jitter.

    Transient failures ([Solver_diverged], [Worker_failed]) are worth a
    clean re-run; validation errors ([Invariant_violation],
    [Checkpoint_corrupt]) and the server's own outcomes ([Queue_full],
    [Deadline_exceeded]) are never retried. Jitter is deterministic per
    (seed, job id, attempt), so a replayed job file backs off on the
    exact same schedule. *)

type t = {
  max_retries : int;      (** retries after the first attempt (>= 0) *)
  base_delay_ms : float;  (** delay before the first retry *)
  multiplier : float;     (** geometric growth per further retry *)
  max_delay_ms : float;   (** cap applied before jitter *)
  jitter : float;         (** relative half-width, e.g. 0.25 = +-25% *)
  seed : int;             (** jitter stream seed *)
}

val default : t
(** 2 retries, 25 ms base, x4 growth, 2 s cap, +-25% jitter, seed 42. *)

val retryable : Robust.Error.t -> bool
(** [true] only for [Solver_diverged] and [Worker_failed]. *)

val delay_ms : t -> job_id:string -> attempt:int -> float
(** Backoff before retrying after failed attempt number [attempt]
    (1-based): [min (base * multiplier^(attempt-1)) max] scaled by a
    deterministic jitter factor in [[1 - jitter, 1 + jitter)]. Raises
    [Invalid_argument] when [attempt < 1]. *)

val schedule : t -> job_id:string -> float list
(** The full backoff schedule [delay_ms ~attempt:1 .. max_retries]. *)

val should_retry : t -> Robust.Error.t -> attempt:int -> bool
(** [retryable e && attempt <= max_retries] — whether failed attempt
    [attempt] earns another try. *)
