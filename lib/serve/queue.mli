(** Bounded FIFO job queue with same-key batch extraction.

    The serve loop's admission buffer. Capacity is a hard bound —
    {!try_push} returns [false] when full and the server turns that into
    a structured [Robust.Error.Queue_full] rejection (backpressure),
    never unbounded buffering. {!pop_batch} removes {e every} queued item
    sharing the oldest item's key (arrival order preserved), which is how
    same-fingerprint jobs get batched onto one prepared flow. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int

val depth : 'a t -> int
(** Items currently queued. *)

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Enqueue; [false] (and no side effect) when the queue is at
    capacity. *)

val pop_batch : 'a t -> key:('a -> string) -> 'a list
(** Remove and return all items whose key equals the oldest item's key,
    in arrival order; [[]] when empty. *)
