#!/bin/sh
# Full repository gate: build everything, run the test suites and the
# quickstart example, smoke-run the solver-engine, multigrid,
# fft-screening and adjoint-sensitivity benches (cache + warm-start +
# preconditioner + pool + blur tier + gradient guide) and gate them
# against the committed bench/baselines via bench_diff (wall-clock
# regressions and invariant flips fail the run),
# smoke the CLI with --report, --perfetto and --prom, validate the JSON
# all three write, exercise the invariant-check subcommand and the
# fault-injection harness (structured exit codes), prove the sweep
# checkpoint resumes, and smoke the run ledger end to end (every run —
# including the fault-injected failures — must append a valid JSONL
# record, and thermoplace history must read them back). Run from
# anywhere inside the repository.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

# Route every run's ledger record to a scratch file so the smoke can
# assert exact growth without touching the working directory's ledger.
ledger=$(mktemp /tmp/thermoplace-ledger.XXXXXX.jsonl)
rm -f "$ledger"
THERMOPLACE_LEDGER="$ledger"
export THERMOPLACE_LEDGER

echo "== ledger file is git-ignored"
grep -qx 'thermoplace.ledger.jsonl' .gitignore

echo "== dune build"
dune build @all

echo "== dune runtest"
dune runtest

echo "== quickstart example"
dune exec examples/quickstart.exe >/dev/null

echo "== solver engine bench smoke (2 trials)"
dune exec bench/main.exe -- --jobs 2 --trials 2 cg >/dev/null
dune exec bin/json_check.exe -- BENCH_cg.json experiment trials summary

echo "== multigrid bench smoke"
dune exec bench/main.exe -- --jobs 2 mg >/dev/null
dune exec bin/json_check.exe -- BENCH_mg.json experiment summary

echo "== fft screening bench smoke"
dune exec bench/main.exe -- --jobs 2 fft >/dev/null
dune exec bin/json_check.exe -- \
  BENCH_fft.json experiment summary summary.screening summary.optimizer

echo "== adjoint sensitivity bench smoke"
dune exec bench/main.exe -- --jobs 2 adjoint >/dev/null
dune exec bin/json_check.exe -- \
  BENCH_adjoint.json experiment summary summary.adjoint_solve \
  summary.optimizer

echo "== batch serve bench smoke"
dune exec bench/main.exe -- --jobs 2 serve >/dev/null 2>&1
dune exec bin/json_check.exe -- \
  BENCH_serve.json experiment summary summary.batching \
  summary.fault_isolation summary.retry

# Each bench run appended one ledger record.
dune exec bin/json_check.exe -- --jsonl "$ledger" 5

echo "== bench regression gate (bench_diff vs committed baselines)"
# A generous threshold absorbs machine-to-machine noise on top of the
# baselines' own measured IQR; invariant flips (plans_agree,
# parallel_bit_identical, ...) fail at any threshold.
verdict=$(mktemp /tmp/thermoplace-verdict.XXXXXX.json)
dune exec bin/bench_diff.exe -- --threshold 0.60 --json "$verdict" \
  bench/baselines/cg.json BENCH_cg.json >/dev/null
dune exec bin/json_check.exe -- "$verdict" baseline fresh ok failed keys
dune exec bin/bench_diff.exe -- --threshold 0.60 \
  bench/baselines/mg.json BENCH_mg.json >/dev/null
dune exec bin/bench_diff.exe -- --threshold 0.60 \
  bench/baselines/fft.json BENCH_fft.json >/dev/null
dune exec bin/bench_diff.exe -- --threshold 0.60 \
  bench/baselines/adjoint.json BENCH_adjoint.json >/dev/null
dune exec bin/bench_diff.exe -- --threshold 0.60 \
  bench/baselines/serve.json BENCH_serve.json >/dev/null
# Sanity of the gate itself: clean against itself, trips on a simulated
# +100% slowdown (medians compared, so this holds for statistics
# baselines exactly as it did for legacy scalars).
dune exec bin/bench_diff.exe -- \
  bench/baselines/cg.json bench/baselines/cg.json >/dev/null
rc=0
dune exec bin/bench_diff.exe -- --scale-times 2.0 \
  bench/baselines/cg.json bench/baselines/cg.json >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "bench_diff: expected exit 1 on simulated slowdown, got $rc" >&2
  exit 1
fi
rm -f "$verdict"

echo "== thermoplace --report / --prom smoke"
report=$(mktemp /tmp/thermoplace-report.XXXXXX.json)
ckpt=$(mktemp /tmp/thermoplace-ckpt.XXXXXX.json)
perfetto=$(mktemp /tmp/thermoplace-perfetto.XXXXXX.json)
prom=$(mktemp /tmp/thermoplace-metrics.XXXXXX.prom)
hist=$(mktemp /tmp/thermoplace-history.XXXXXX.jsonl)
serve_jobs=$(mktemp /tmp/thermoplace-serve-jobs.XXXXXX.jsonl)
serve_out=$(mktemp /tmp/thermoplace-serve-out.XXXXXX.jsonl)
serve_out2=$(mktemp /tmp/thermoplace-serve-out2.XXXXXX.jsonl)
serve_ledger=$(mktemp /tmp/thermoplace-serve-ledger.XXXXXX.jsonl)
serve_err=$(mktemp /tmp/thermoplace-serve-err.XXXXXX.log)
serve_fifo=$(mktemp -u /tmp/thermoplace-serve-fifo.XXXXXX)
trap 'rm -f "$report" "$ckpt" "$perfetto" "$prom" "$hist" "$ledger" \
  "$serve_jobs" "$serve_out" "$serve_out2" "$serve_ledger" "$serve_err" \
  "$serve_fifo"' EXIT
dune exec bin/thermoplace.exe -- \
  flow --test-set small --cycles 200 --report "$report" \
  --prom "$prom" >/dev/null
dune exec bin/json_check.exe -- \
  "$report" schema_version config spans metrics warnings base result \
  convergence
# The Prometheus exposition must carry typed series from the same run.
grep -q '^# TYPE thermal_cg_iterations_count gauge$' "$prom"
grep -q '^thermal_cg_iterations{quantile="0.5"}' "$prom"

echo "== perfetto trace smoke"
# A parallel optimizer run must yield a valid Chrome trace-event file with
# spans from more than one domain (json_check --trace checks both).
dune exec bin/thermoplace.exe -- \
  optimize --test-set small --cycles 200 --rows 2 --jobs 4 \
  --perfetto "$perfetto" >/dev/null
dune exec bin/json_check.exe -- --trace "$perfetto" 2

echo "== gradient guide smoke (optimize --guide gradient)"
# The adjoint-guided optimizer on the small mesh must produce a report
# carrying the sensitivity section and the adjoint solve count, and its
# predicted peak must stay within tolerance of the peak-guided plan.
dune exec bin/thermoplace.exe -- \
  optimize --test-set small --cycles 200 --rows 2 --guide gradient \
  --report "$report" >/dev/null
dune exec bin/json_check.exe -- \
  "$report" config sensitivity result result.adjoint_evaluations
grep -q '"guide": "gradient"' "$report"
peak_grad=$(grep -o '"predicted_peak_k":[^,}]*' "$report" \
  | head -1 | cut -d: -f2)
dune exec bin/thermoplace.exe -- \
  optimize --test-set small --cycles 200 --rows 2 --guide peak \
  --report "$report" >/dev/null
peak_peak=$(grep -o '"predicted_peak_k":[^,}]*' "$report" \
  | head -1 | cut -d: -f2)
awk -v g="$peak_grad" -v p="$peak_peak" \
  'BEGIN { exit (g <= p + 0.05) ? 0 : 1 }' || {
  echo "gradient guide smoke: peak $peak_grad K > peak-guide $peak_peak K + 0.05" >&2
  exit 1
}

echo "== invariant checks (thermoplace check)"
dune exec bin/thermoplace.exe -- check --test-set small --cycles 200 >/dev/null

echo "== fault-injection smoke"
# A NaN injected into the power map must surface as a structured invariant
# violation (exit 11), never a silently wrong report.
rc=0
THERMOPLACE_FAULTS=nan_power dune exec bin/thermoplace.exe -- \
  check --test-set small --cycles 200 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 11 ]; then
  echo "fault smoke: expected exit 11 for nan_power, got $rc" >&2
  exit 1
fi
# Stalling every rung of the CG escalation ladder must surface as solver
# divergence (exit 10).
rc=0
THERMOPLACE_FAULTS=cg_stall:8 dune exec bin/thermoplace.exe -- \
  flow --test-set small --cycles 200 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 10 ]; then
  echo "fault smoke: expected exit 10 for cg_stall, got $rc" >&2
  exit 1
fi
# A single stall under the multigrid preconditioner must be recovered by
# the escalation ladder (the MG first attempt earns the cold-Jacobi rung),
# so the flow still exits 0.
rc=0
THERMOPLACE_FAULTS=cg_stall dune exec bin/thermoplace.exe -- \
  flow --test-set small --cycles 200 --precond mg >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "fault smoke: expected exit 0 for recovered cg_stall under mg, got $rc" >&2
  exit 1
fi

echo "== batch serve smoke (mixed outcomes)"
# Six jobs: four clean across every technique, one poisoned with a NaN
# power fault, one with an impossible deadline. The server must answer
# every line (exit 0 overall), isolate the failures to their own jobs,
# and write one ledger record per job plus one for the run itself.
cat >"$serve_jobs" <<'EOF'
{"id":"a1","cycles":200}
{"id":"a2","cycles":200,"technique":"default"}
{"id":"a3","cycles":200,"technique":"hw"}
{"id":"a4","cycles":200,"technique":"optimize","rows":1}
{"id":"bad","cycles":200,"faults":"nan_power"}
{"id":"late","cycles":200,"deadline_ms":0.5}
EOF
rm -f "$serve_ledger"
dune exec bin/thermoplace.exe -- serve --input "$serve_jobs" \
  --output "$serve_out" --ledger "$serve_ledger" --jobs 2 2>/dev/null
wc -l <"$serve_out" | grep -qx '6'
outcomes=$(dune exec bin/json_check.exe -- --jsonl-field "$serve_out" outcome)
test "$(echo "$outcomes" | grep -cx '"ok"')" = 4
test "$(echo "$outcomes" | grep -cx '"failed"')" = 1
test "$(echo "$outcomes" | grep -cx '"deadline_exceeded"')" = 1
exits=$(dune exec bin/json_check.exe -- --jsonl-field "$serve_out" exit_code)
echo "$exits" | grep -qx '11'
echo "$exits" | grep -qx '15'
# 6 per-job records plus the serve run's own record.
dune exec bin/json_check.exe -- --jsonl "$serve_ledger" 7
dune exec bin/thermoplace.exe -- history list --ledger "$serve_ledger" \
  --job bad | grep -q 'serve.job'

echo "== batch serve fault isolation (bit-identical mates)"
# Re-run the same file without the poisoned job: every surviving job's
# deterministic result payload must be bit-identical to the fault-armed
# run — one fault degrades exactly one job.
serve_pairs() {
  ids=$(dune exec bin/json_check.exe -- --jsonl-field "$1" id)
  results=$(dune exec bin/json_check.exe -- --jsonl-field "$1" result)
  paste_a=$(mktemp); paste_b=$(mktemp)
  echo "$ids" >"$paste_a"; echo "$results" >"$paste_b"
  paste "$paste_a" "$paste_b" | sort
  rm -f "$paste_a" "$paste_b"
}
grep -v '"id":"bad"' "$serve_jobs" >"$serve_out2.jobs"
dune exec bin/thermoplace.exe -- serve --input "$serve_out2.jobs" \
  --output "$serve_out2" --ledger none --jobs 2 2>/dev/null
serve_pairs "$serve_out" | grep -v '^"bad"' >"$serve_out.pairs"
serve_pairs "$serve_out2" >"$serve_out2.pairs"
cmp "$serve_out.pairs" "$serve_out2.pairs"
rm -f "$serve_out2.jobs" "$serve_out.pairs" "$serve_out2.pairs"

echo "== batch serve backpressure (bounded queue)"
# Capacity 1: the whole file is read before the first batch executes,
# so exactly one job is admitted and the other two are rejected with
# the structured Queue_full class (exit 14) — never silently dropped.
printf '%s\n%s\n%s\n' '{"id":"q1","cycles":200}' \
  '{"id":"q2","cycles":200}' '{"id":"q3","cycles":200}' >"$serve_out2.jobs"
dune exec bin/thermoplace.exe -- serve --input "$serve_out2.jobs" \
  --output "$serve_out2" --ledger none --queue-cap 1 2>/dev/null
outcomes=$(dune exec bin/json_check.exe -- --jsonl-field "$serve_out2" outcome)
test "$(echo "$outcomes" | grep -cx '"ok"')" = 1
test "$(echo "$outcomes" | grep -cx '"rejected"')" = 2
exits=$(dune exec bin/json_check.exe -- --jsonl-field "$serve_out2" exit_code)
test "$(echo "$exits" | grep -cx '14')" = 2
rm -f "$serve_out2.jobs"

echo "== batch serve graceful drain (SIGTERM)"
# SIGTERM must stop admission, drain the accepted job and exit 0 —
# never kill work in flight. Driven through a fifo so the server is
# mid-stream when the signal lands.
mkfifo "$serve_fifo"
./_build/default/bin/thermoplace.exe serve --input "$serve_fifo" \
  --output "$serve_out2" --ledger none >/dev/null 2>"$serve_err" &
serve_pid=$!
exec 9>"$serve_fifo"
printf '%s\n' '{"id":"d1","cycles":200}' >&9
sleep 1
kill -TERM "$serve_pid"
exec 9>&-
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "serve drain: expected exit 0 after SIGTERM, got $rc" >&2
  exit 1
fi
dune exec bin/json_check.exe -- --jsonl-field "$serve_out2" outcome \
  | grep -qx '"ok"'
grep 'drained_on_signal' "$serve_err" | grep -q 'true'
rm -f "$serve_fifo"

echo "== sweep checkpoint smoke"
rm -f "$ckpt"
dune exec bin/thermoplace.exe -- \
  sweep --test-set small --cycles 200 --checkpoint "$ckpt" >/dev/null
dune exec bin/json_check.exe -- "$ckpt" schema_version kind key entries
# Resume from the complete checkpoint: every point is replayed from the
# file, so the rerun must also succeed (and is near-instant).
dune exec bin/thermoplace.exe -- \
  sweep --test-set small --cycles 200 --checkpoint "$ckpt" >/dev/null

echo "== run ledger + history smoke"
# Every run above — 5 benches, 8 thermoplace runs (2 of them
# fault-injected failures) and the 2 sweeps — appended exactly one
# record to the scratch ledger (the serve smokes wrote to their own
# explicit --ledger files, which beat THERMOPLACE_LEDGER).
dune exec bin/json_check.exe -- --jsonl "$ledger" 15
# Two optimize runs differing only in preconditioner, into a fresh
# ledger (the explicit --ledger flag beats THERMOPLACE_LEDGER), so
# history diff sees exactly the config delta.
rm -f "$hist"
dune exec bin/thermoplace.exe -- \
  optimize --test-set small --cycles 200 --rows 1 --jobs 1 \
  --ledger "$hist" >/dev/null
dune exec bin/thermoplace.exe -- \
  optimize --test-set small --cycles 200 --rows 1 --jobs 1 --precond mg \
  --ledger "$hist" >/dev/null
dune exec bin/json_check.exe -- --jsonl "$hist" 2
dune exec bin/thermoplace.exe -- history list --ledger "$hist" >/dev/null
diff_out=$(dune exec bin/thermoplace.exe -- \
  history diff --ledger "$hist" 0 1)
echo "$diff_out" | grep -q 'precond' || {
  echo "history diff: expected a precond config delta" >&2
  exit 1
}
dune exec bin/thermoplace.exe -- \
  history trend --ledger "$hist" --key optimize_ms >/dev/null
# history subcommands only read — the ledgers must not have grown.
dune exec bin/json_check.exe -- --jsonl "$hist" 2
wc -l <"$hist" | grep -qx '2' || {
  echo "history smoke: expected exactly 2 records" >&2
  exit 1
}

echo "== OK"
