#!/bin/sh
# Full repository gate: build everything, run the test suites and the
# quickstart example, then smoke-run the CLI with --report and validate the
# JSON it writes. Run from anywhere inside the repository.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

echo "== dune build"
dune build @all

echo "== dune runtest"
dune runtest

echo "== quickstart example"
dune exec examples/quickstart.exe >/dev/null

echo "== thermoplace --report smoke"
report=$(mktemp /tmp/thermoplace-report.XXXXXX.json)
trap 'rm -f "$report"' EXIT
dune exec bin/thermoplace.exe -- \
  flow --test-set small --cycles 200 --report "$report" >/dev/null
dune exec bin/json_check.exe -- \
  "$report" schema_version config spans metrics warnings base result

echo "== OK"
