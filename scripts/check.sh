#!/bin/sh
# Full repository gate: build everything, run the test suites and the
# quickstart example, smoke-run the solver-engine bench (cache + warm-start
# + preconditioner + pool) and the CLI with --report, and validate the JSON
# both write. Run from anywhere inside the repository.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

echo "== dune build"
dune build @all

echo "== dune runtest"
dune runtest

echo "== quickstart example"
dune exec examples/quickstart.exe >/dev/null

echo "== solver engine bench smoke"
dune exec bench/main.exe -- --jobs 2 cg >/dev/null
dune exec bin/json_check.exe -- BENCH_cg.json experiment summary

echo "== thermoplace --report smoke"
report=$(mktemp /tmp/thermoplace-report.XXXXXX.json)
trap 'rm -f "$report"' EXIT
dune exec bin/thermoplace.exe -- \
  flow --test-set small --cycles 200 --report "$report" >/dev/null
dune exec bin/json_check.exe -- \
  "$report" schema_version config spans metrics warnings base result

echo "== OK"
