(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (plus the in-text claims and our ablations), and runs
   bechamel micro-benchmarks of the core kernels.

   Each experiment prints its text table and also writes a machine-readable
   summary to BENCH_<name>.json in the current directory.

   Usage:
     dune exec bench/main.exe            -- every experiment (no perf)
     dune exec bench/main.exe -- fig5    -- power/thermal profile maps
     dune exec bench/main.exe -- fig6    -- reduction vs overhead curves
     dune exec bench/main.exe -- table1  -- concentrated-hotspot table
     dune exec bench/main.exe -- timing  -- critical-path overheads
     dune exec bench/main.exe -- congestion
     dune exec bench/main.exe -- ablation
     dune exec bench/main.exe -- optimizer
     dune exec bench/main.exe -- perf    -- bechamel kernels
     dune exec bench/main.exe -- cg      -- solve-engine speedup study
     dune exec bench/main.exe -- mg      -- multigrid preconditioner study
     dune exec bench/main.exe -- fft     -- FFT blur screening-tier study

   `--jobs N` anywhere on the line sizes the domain pool. `--trials N`
   runs each selected suite N times and replaces every wall-clock
   ("_ms") leaf of the summary with {median, min, max, iqr, trials}
   statistics, so bench_diff can gate medians inside a noise-aware band
   instead of a single sample; boolean invariants are ANDed across
   trials. Every suite also appends one record to the run ledger
   (THERMOPLACE_LEDGER; "none" disables). *)

let line = String.make 78 '-'

let header title paper_ref =
  Printf.printf "\n%s\n%s\n(paper reference: %s)\n%s\n" line title paper_ref
    line

let sim_cycles = 1000

let flow1 = lazy (Postplace.Experiment.test_set_1 ~sim_cycles ())
let flow2 = lazy (Postplace.Experiment.test_set_2 ~sim_cycles ())

(* Each run_X returns the JSON summary that lands in BENCH_<name>.json. *)

let j_obj fields = Obs.Json.Obj fields
let j_list items = Obs.Json.List items
let j_f v = Obs.Json.Float v
let j_i v = Obs.Json.Int v
let j_s v = Obs.Json.String v
let j_b v = Obs.Json.Bool v

(* Percentile summary of a recorded histogram: the reservoir keeps an
   unbiased sample of the whole stream, so p50/p90/p99 describe the full
   run, not its first 4096 observations. *)
let hist_percentiles name =
  match Obs.Metrics.histogram name with
  | None -> Obs.Json.Null
  | Some h ->
    j_obj
      [ ("count", j_i h.Obs.Metrics.count);
        ("p50", j_f (Obs.Metrics.percentile h 0.50));
        ("p90", j_f (Obs.Metrics.percentile h 0.90));
        ("p99", j_f (Obs.Metrics.percentile h 0.99)) ]

let point_json (p : Postplace.Experiment.point) =
  j_obj
    [ ("scheme", j_s p.Postplace.Experiment.scheme);
      ("area_overhead_pct", j_f p.area_overhead_pct);
      ("temp_reduction_pct", j_f p.temp_reduction_pct);
      ("gradient_reduction_pct", j_f p.gradient_reduction_pct);
      ("peak_rise_k", j_f p.peak_rise_k);
      ("timing_overhead_pct", j_f p.timing_overhead_pct);
      ("hpwl_um", j_f p.hpwl_um) ]

(* --- FIG 5 ------------------------------------------------------------- *)

let run_fig5 () =
  header "FIG 5 -- power and thermal profiles of test set 1"
    "Fig. 5: 40x40 maps; 'significant correlation between highly power \
     consuming area and thermal hotspots'";
  let fl = Lazy.force flow1 in
  let power, thermal = Postplace.Experiment.fig5_maps fl in
  Printf.printf "power map [W per tile], 40x40, top row first:\n";
  Format.printf "%a@." Geo.Grid.pp_rows power;
  Printf.printf "thermal map [K rise over ambient], 40x40, top row first:\n";
  Format.printf "%a@." Geo.Grid.pp_rows thermal;
  let m = Thermal.Metrics.of_map thermal in
  Format.printf "summary: %a@." Thermal.Metrics.pp m;
  let px, py = Geo.Grid.argmax power in
  let tx, ty = Geo.Grid.argmax thermal in
  Printf.printf
    "peak power tile (%d,%d) vs peak thermal tile (%d,%d) -- the paper's \
     correlation claim\n"
    px py tx ty;
  j_obj
    [ ("thermal", Thermal.Metrics.to_json m);
      ("peak_power_tile", j_list [ j_i px; j_i py ]);
      ("peak_thermal_tile", j_list [ j_i tx; j_i ty ]) ]

(* --- FIG 6 ------------------------------------------------------------- *)

let pp_points points =
  Printf.printf "%-10s %12s %14s %16s %12s\n" "scheme" "overhead[%]"
    "dT-peak red[%]" "gradient red[%]" "timing[+%]";
  List.iter
    (fun (p : Postplace.Experiment.point) ->
       Printf.printf "%-10s %12.2f %14.2f %16.2f %12.2f\n"
         p.Postplace.Experiment.scheme p.area_overhead_pct
         p.temp_reduction_pct p.gradient_reduction_pct p.timing_overhead_pct)
    points

let run_fig6 () =
  header "FIG 6 -- temperature reduction vs area overhead (test set 1)"
    "Fig. 6: Default / ERI / HW curves, 0..40% overhead; both ERI and HW \
     above Default, gap grows with overhead, ERI vs HW within a small \
     margin";
  let fl = Lazy.force flow1 in
  let fig6 = Postplace.Experiment.run_fig6 fl in
  let base = fig6.Postplace.Experiment.base_eval in
  Format.printf "base placement: %a@." Place.Placement.pp_summary
    base.Postplace.Flow.placement;
  Format.printf "base thermal:   %a@." Thermal.Metrics.pp
    base.Postplace.Flow.metrics;
  Printf.printf "hotspots: %d detected (paper: four scattered small)\n\n"
    (List.length base.Postplace.Flow.hotspots);
  let points =
    fig6.Postplace.Experiment.default_points
    @ fig6.Postplace.Experiment.eri_points
    @ fig6.Postplace.Experiment.hw_points
  in
  pp_points points;
  (* the paper's qualitative checks, verified on the spot *)
  let reductions pts =
    List.map (fun (p : Postplace.Experiment.point) -> p.temp_reduction_pct)
      pts
  in
  let d = reductions fig6.Postplace.Experiment.default_points in
  let e = reductions fig6.Postplace.Experiment.eri_points in
  let h = reductions fig6.Postplace.Experiment.hw_points in
  let all_above a b = List.for_all2 (fun x y -> x > y) a b in
  let eri_above = all_above e d in
  let hw_above = all_above h d in
  let monotone =
    List.for_all (fun xs -> xs = List.sort compare xs) [ d; e ]
  in
  Printf.printf "\ncheck: ERI curve above Default at every point: %b\n"
    eri_above;
  Printf.printf "check: HW curve above Default at every point:  %b\n"
    hw_above;
  Printf.printf "check: effectiveness increases with overhead:  %b\n"
    monotone;
  j_obj
    [ ("base_thermal", Thermal.Metrics.to_json base.Postplace.Flow.metrics);
      ("hotspots", j_i (List.length base.Postplace.Flow.hotspots));
      ("points", j_list (List.map point_json points));
      ("checks",
       j_obj
         [ ("eri_above_default", j_b eri_above);
           ("hw_above_default", j_b hw_above);
           ("monotone_in_overhead", j_b monotone) ]) ]

(* --- TABLE I ------------------------------------------------------------ *)

let run_table1 () =
  header "TABLE I -- concentrated hotspot (test set 2)"
    "Table I: Default 16.1%->11.3%, 32.2%->20.2%; ERI (20 rows) \
     16.1%->13.1%, (40 rows) 32.2%->28.6%";
  let fl = Lazy.force flow2 in
  let rows = Postplace.Experiment.run_table1 fl in
  Printf.printf "%-9s %16s %9s %13s %15s\n" "scheme" "area [um x um]" "rows"
    "overhead[%]" "dT reduction[%]";
  List.iter
    (fun (r : Postplace.Experiment.table1_row) ->
       Printf.printf "%-9s %7.0f x %6.0f %9s %13.1f %15.1f\n"
         r.Postplace.Experiment.t1_scheme r.t1_width_um r.t1_height_um
         (match r.t1_rows_inserted with
          | None -> "-"
          | Some k -> string_of_int k)
         r.t1_overhead_pct r.t1_reduction_pct)
    rows;
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.table1_row) ->
               j_obj
                 [ ("scheme", j_s r.Postplace.Experiment.t1_scheme);
                   ("width_um", j_f r.t1_width_um);
                   ("height_um", j_f r.t1_height_um);
                   ("rows_inserted",
                    (match r.t1_rows_inserted with
                     | None -> Obs.Json.Null
                     | Some k -> j_i k));
                   ("overhead_pct", j_f r.t1_overhead_pct);
                   ("reduction_pct", j_f r.t1_reduction_pct) ])
            rows)) ]

(* --- TIMING -------------------------------------------------------------- *)

let run_timing () =
  header "TIMING -- critical-path overhead of the techniques"
    "in-text: 'the maximum timing overhead caused by applying the proposed \
     methods is around 2%'";
  let fl = Lazy.force flow1 in
  let rows = Postplace.Experiment.run_timing fl in
  Printf.printf "%-9s %13s %15s %18s\n" "scheme" "overhead[%]"
    "critical [ps]" "timing vs base[%]";
  List.iter
    (fun (r : Postplace.Experiment.timing_summary) ->
       Printf.printf "%-9s %13.1f %15.0f %18.2f\n"
         r.Postplace.Experiment.ts_scheme r.ts_overhead_pct r.ts_critical_ps
         r.ts_overhead_timing_pct)
    rows;
  (* the paper's claim concerns the *techniques*, so HW is measured against
     the Default placement it starts from *)
  let marginal =
    match rows with
    | [ _; default_row; eri_row; hw_row ] ->
      let marginal =
        100.0
        *. (hw_row.Postplace.Experiment.ts_critical_ps
            -. default_row.Postplace.Experiment.ts_critical_ps)
        /. default_row.Postplace.Experiment.ts_critical_ps
      in
      Printf.printf
        "\nERI vs base: %+.2f%%; HW marginal vs its Default start: %+.2f%% \
         (paper: around 2%%)\n"
        eri_row.Postplace.Experiment.ts_overhead_timing_pct marginal;
      Some marginal
    | _ -> None
  in
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.timing_summary) ->
               j_obj
                 [ ("scheme", j_s r.Postplace.Experiment.ts_scheme);
                   ("overhead_pct", j_f r.ts_overhead_pct);
                   ("critical_ps", j_f r.ts_critical_ps);
                   ("timing_vs_base_pct", j_f r.ts_overhead_timing_pct) ])
            rows));
      ("hw_marginal_vs_default_pct",
       match marginal with None -> Obs.Json.Null | Some m -> j_f m) ]

(* --- CONGESTION ------------------------------------------------------------ *)

let run_congestion () =
  header "CONGESTION -- ERI by-product in the hotspot region"
    "in-text: ERI 'increases the distance between rows of cells, thus \
     reducing routing congestion in the hotspot regions'";
  let fl = Lazy.force flow1 in
  let rows = Postplace.Experiment.run_congestion fl in
  Printf.printf "%-7s %16s %15s %22s\n" "scheme" "max util [frac]"
    "overflow [um]" "hotspot demand [um]";
  List.iter
    (fun (r : Postplace.Experiment.congestion_summary) ->
       Printf.printf "%-7s %16.3f %15.1f %22.1f\n"
         r.Postplace.Experiment.cs_scheme r.cs_max_utilization
         r.cs_overflow_um r.cs_hotspot_demand_um)
    rows;
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.congestion_summary) ->
               j_obj
                 [ ("scheme", j_s r.Postplace.Experiment.cs_scheme);
                   ("max_utilization", j_f r.cs_max_utilization);
                   ("overflow_um", j_f r.cs_overflow_um);
                   ("hotspot_demand_um", j_f r.cs_hotspot_demand_um) ])
            rows)) ]

(* --- ABLATION ----------------------------------------------------------------- *)

let run_ablation () =
  header "ABLATION -- ERI row-placement granularity (test set 2)"
    "design choice behind paper SIII-A: interleaving empty rows vs dropping \
     one block; plus the future-work greedy optimizer";
  let fl = Lazy.force flow2 in
  let rows = Postplace.Experiment.run_ablation fl in
  Printf.printf "%-18s %13s %17s\n" "variant" "overhead[%]"
    "dT reduction[%]";
  List.iter
    (fun (r : Postplace.Experiment.ablation_row) ->
       Printf.printf "%-18s %13.1f %17.2f\n"
         r.Postplace.Experiment.ab_variant r.ab_overhead_pct
         r.ab_reduction_pct)
    rows;
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.ablation_row) ->
               j_obj
                 [ ("variant", j_s r.Postplace.Experiment.ab_variant);
                   ("overhead_pct", j_f r.ab_overhead_pct);
                   ("reduction_pct", j_f r.ab_reduction_pct) ])
            rows)) ]

(* --- OPTIMIZER ------------------------------------------------------------------ *)

let run_optimizer () =
  header "OPTIMIZER -- greedy empty-row budget allocation"
    "paper future work: 'transforming them into suitable optimization \
     problems (e.g., the amount of empty rows ... to be inserted)'";
  let fl = Lazy.force flow2 in
  let base = Postplace.Flow.evaluate fl fl.Postplace.Flow.base_placement in
  let budgets =
    List.map
      (fun rows ->
         let heuristic = Postplace.Flow.apply_eri fl ~base ~rows in
         let he =
           Postplace.Flow.evaluate fl
             heuristic.Postplace.Technique.eri_placement
         in
         let optimized = Postplace.Optimizer.greedy_rows fl ~rows () in
         let oe =
           Postplace.Flow.evaluate fl
             optimized.Postplace.Optimizer.plan.Postplace.Technique
               .eri_placement
         in
         let red ev =
           Thermal.Metrics.reduction_pct
             ~before:base.Postplace.Flow.metrics
             ~after:ev.Postplace.Flow.metrics
         in
         Printf.printf
           "budget %2d rows: heuristic ERI %.2f%% | greedy %.2f%% (%d coarse \
            solves)\n"
           rows (red he) (red oe)
           optimized.Postplace.Optimizer.evaluations;
         j_obj
           [ ("budget_rows", j_i rows);
             ("heuristic_reduction_pct", j_f (red he));
             ("greedy_reduction_pct", j_f (red oe));
             ("coarse_solves", j_i optimized.Postplace.Optimizer.evaluations) ])
      [ 8; 16; 24 ]
  in
  j_obj [ ("budgets", j_list budgets) ]

(* --- ELECTROTHERMAL ------------------------------------------------------------ *)

let run_electrothermal () =
  header "ELECTROTHERMAL -- leakage/temperature feedback"
    "paper SI motivation: 'the positive feedback between leakage power and \
     temperature further exacerbates the thermal problem'";
  let fl = Lazy.force flow2 in
  let rows = Postplace.Experiment.run_electrothermal fl in
  Printf.printf "%-6s %16s %18s %18s %8s\n" "scheme" "open-loop [K]"
    "closed-loop [K]" "leak increase[%]" "iters";
  List.iter
    (fun (r : Postplace.Experiment.electrothermal_row) ->
       Printf.printf "%-6s %16.3f %18.3f %18.2f %8d\n"
         r.Postplace.Experiment.et_scheme r.et_open_loop_peak_k
         r.et_closed_loop_peak_k r.et_leakage_increase_pct r.et_iterations)
    rows;
  (match rows with
   | [ b; e ] ->
     let open_red =
       100.0
       *. (b.Postplace.Experiment.et_open_loop_peak_k
           -. e.Postplace.Experiment.et_open_loop_peak_k)
       /. b.Postplace.Experiment.et_open_loop_peak_k
     in
     let closed_red =
       100.0
       *. (b.Postplace.Experiment.et_closed_loop_peak_k
           -. e.Postplace.Experiment.et_closed_loop_peak_k)
       /. b.Postplace.Experiment.et_closed_loop_peak_k
     in
     Printf.printf
       "\nERI reduction: %.2f%% open loop vs %.2f%% under feedback\n"
       open_red closed_red
   | _ -> ());
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.electrothermal_row) ->
               j_obj
                 [ ("scheme", j_s r.Postplace.Experiment.et_scheme);
                   ("open_loop_peak_k", j_f r.et_open_loop_peak_k);
                   ("closed_loop_peak_k", j_f r.et_closed_loop_peak_k);
                   ("leakage_increase_pct", j_f r.et_leakage_increase_pct);
                   ("iterations", j_i r.et_iterations) ])
            rows)) ]

(* --- PACKAGE SWEEP --------------------------------------------------------------- *)

let run_package () =
  header "PACKAGE -- sensitivity to heat-removal capability"
    "paper SII: 'it is possible to have different peak temperature and \
     temperature gradient by using cooling mechanisms with different heat \
     removal capabilities'";
  let fl = Lazy.force flow1 in
  let rows = Postplace.Experiment.run_package_sweep fl in
  Printf.printf "%-18s %12s %14s %20s\n" "sink h [W/m2K]" "peak [K]"
    "gradient [K]" "ERI reduction [%]";
  List.iter
    (fun (r : Postplace.Experiment.package_row) ->
       Printf.printf "%-18.0f %12.3f %14.3f %20.2f\n"
         r.Postplace.Experiment.pk_h_top_w_m2k r.pk_peak_k r.pk_gradient_k
         r.pk_eri_reduction_pct)
    rows;
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.package_row) ->
               j_obj
                 [ ("h_top_w_m2k", j_f r.Postplace.Experiment.pk_h_top_w_m2k);
                   ("peak_k", j_f r.pk_peak_k);
                   ("gradient_k", j_f r.pk_gradient_k);
                   ("eri_reduction_pct", j_f r.pk_eri_reduction_pct) ])
            rows)) ]

(* --- BASELINES ----------------------------------------------------------------------- *)

let run_baselines () =
  header "BASELINES -- placement-time vs post-placement thermal awareness"
    "paper SI: thermal-aware floorplanning exists at the architecture level \
     (refs [7][8]); this compares a placement-time power-aware spreader \
     against the paper's post-placement techniques at matched overhead";
  let fl = Lazy.force flow1 in
  let rows = Postplace.Experiment.run_baselines fl in
  Printf.printf "%-20s %13s %15s %12s\n" "scheme" "overhead[%]"
    "reduction[%]" "timing[+%]";
  List.iter
    (fun (r : Postplace.Experiment.baseline_row) ->
       Printf.printf "%-20s %13.1f %15.2f %12.2f\n"
         r.Postplace.Experiment.bl_scheme r.bl_overhead_pct
         r.bl_reduction_pct r.bl_timing_pct)
    rows;
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.baseline_row) ->
               j_obj
                 [ ("scheme", j_s r.Postplace.Experiment.bl_scheme);
                   ("overhead_pct", j_f r.bl_overhead_pct);
                   ("reduction_pct", j_f r.bl_reduction_pct);
                   ("timing_pct", j_f r.bl_timing_pct) ])
            rows)) ]

(* --- GLITCH ------------------------------------------------------------------------ *)

let run_glitch () =
  header "GLITCH -- zero-delay vs event-driven activity"
    "fidelity study: the paper annotates activity from VCS (event-driven); \
     our cycle engine misses glitch transitions, quantified here";
  let fl = Lazy.force flow1 in
  let rows = Postplace.Experiment.run_glitch fl in
  Printf.printf "%-28s %14s %14s %8s\n" "metric" "zero-delay" "event-driven"
    "ratio";
  List.iter
    (fun (r : Postplace.Experiment.glitch_row) ->
       Printf.printf "%-28s %14.4f %14.4f %8.2f\n"
         r.Postplace.Experiment.gl_metric r.gl_zero_delay r.gl_event_driven
         (r.gl_event_driven /. r.gl_zero_delay))
    rows;
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.glitch_row) ->
               j_obj
                 [ ("metric", j_s r.Postplace.Experiment.gl_metric);
                   ("zero_delay", j_f r.gl_zero_delay);
                   ("event_driven", j_f r.gl_event_driven) ])
            rows)) ]

(* --- GUIDE (gradient vs peak head-to-head) ----------------------------------------- *)

let run_guide () =
  header "GUIDE -- gradient-guided vs peak-guided allocation"
    "n/a (engineering): same row budget, full-mesh committed peaks, with \
     the ERI and HW heuristics as controls";
  let fl = Lazy.force flow1 in
  let rows = Postplace.Experiment.run_guide fl in
  Printf.printf "%-22s %10s %10s %10s %8s %8s\n" "scheme" "peak K"
    "reduce %" "area %" "solves" "adjoints";
  List.iter
    (fun (r : Postplace.Experiment.guide_row) ->
       Printf.printf "%-22s %10.3f %10.2f %10.2f %8d %8d\n"
         r.Postplace.Experiment.gd_scheme r.gd_peak_rise_k r.gd_reduction_pct
         r.gd_area_overhead_pct r.gd_exact_solves r.gd_adjoint_solves)
    rows;
  j_obj
    [ ("rows",
       j_list
         (List.map
            (fun (r : Postplace.Experiment.guide_row) ->
               j_obj
                 [ ("scheme", j_s r.Postplace.Experiment.gd_scheme);
                   ("peak_rise_k", j_f r.gd_peak_rise_k);
                   ("reduction_pct", j_f r.gd_reduction_pct);
                   ("area_overhead_pct", j_f r.gd_area_overhead_pct);
                   ("exact_solves", j_i r.gd_exact_solves);
                   ("adjoint_solves", j_i r.gd_adjoint_solves) ])
            rows)) ]

(* --- TRANSIENT (model validation) ------------------------------------------------- *)

let run_transient () =
  header "TRANSIENT -- validating the steady-state assumption"
    "paper SII: 'the thermal time constant is in the order of tens of \
     milliseconds, much larger than the clock periods in nanoseconds... we \
     can neglect transient currents and solve at the steady state'";
  let fl = Lazy.force flow1 in
  let base = Postplace.Flow.evaluate fl fl.Postplace.Flow.base_placement in
  let cfg =
    { fl.Postplace.Flow.mesh_config with Thermal.Mesh.nx = 16; ny = 16 }
  in
  (* re-bin the power map at the coarse transient resolution *)
  let power =
    Power.Map.power_map base.Postplace.Flow.placement
      ~per_cell_w:fl.Postplace.Flow.per_cell_w ~nx:16 ~ny:16
  in
  let r =
    Thermal.Transient.step_response cfg ~power ~dt_s:2e-5 ~steps:60 ()
  in
  Printf.printf "steady-state peak: %.3f K\n"
    r.Thermal.Transient.steady_peak_k;
  Printf.printf "step-response tau(63%%): %.3e s = %.0f clock cycles at 1 GHz\n"
    r.Thermal.Transient.tau_63_s
    (r.Thermal.Transient.tau_63_s /. 1e-9);
  Printf.printf "selected trajectory points (t [us] -> peak [K]):\n";
  Array.iteri
    (fun k t ->
       if k mod 12 = 0 then
         Printf.printf "  %8.1f -> %.3f\n" (t *. 1e6)
           r.Thermal.Transient.peak_rise_k.(k))
    r.Thermal.Transient.times_s;
  let justified = r.Thermal.Transient.tau_63_s > 1e-6 in
  Printf.printf
    "check: tau >> clock period, steady-state analysis justified: %b\n"
    justified;
  j_obj
    [ ("steady_peak_k", j_f r.Thermal.Transient.steady_peak_k);
      ("tau_63_s", j_f r.Thermal.Transient.tau_63_s);
      ("steady_state_justified", j_b justified) ]

(* --- PERF (bechamel) -------------------------------------------------------------- *)

let run_perf () =
  header "PERF -- kernel micro-benchmarks (bechamel)" "n/a (engineering)";
  let fl = Lazy.force flow1 in
  let base = fl.Postplace.Flow.base_placement in
  let nl = fl.Postplace.Flow.bench.Netgen.Benchmark.netlist in
  let power_map =
    Power.Map.power_map base ~per_cell_w:fl.Postplace.Flow.per_cell_w ~nx:40
      ~ny:40
  in
  let problem = Thermal.Mesh.build fl.Postplace.Flow.mesh_config ~power:power_map in
  let base_ev = lazy (Postplace.Flow.evaluate fl base) in
  let sim = Logicsim.Sim.create nl in
  let workload = fl.Postplace.Flow.workload in
  let rng = Geo.Rng.create 99 in
  let open Bechamel in
  let open Bechamel.Toolkit in
  let tests =
    Test.make_grouped ~name:"kernels"
      [ Test.make ~name:"thermal:cg-solve-40x40x9"
          (Staged.stage (fun () -> ignore (Thermal.Mesh.solve problem)));
        Test.make ~name:"thermal:mesh-assembly"
          (Staged.stage (fun () ->
               ignore
                 (Thermal.Mesh.build fl.Postplace.Flow.mesh_config
                    ~power:power_map)));
        Test.make ~name:"power:map-binning-12k"
          (Staged.stage (fun () ->
               ignore
                 (Power.Map.power_map base
                    ~per_cell_w:fl.Postplace.Flow.per_cell_w ~nx:40 ~ny:40)));
        Test.make ~name:"sim:32-cycles-12k-cells"
          (Staged.stage (fun () ->
               Logicsim.Workload.run workload sim rng ~cycles:32));
        Test.make ~name:"sta:full-timing-12k"
          (Staged.stage (fun () ->
               ignore (Sta.Timing.analyze base ())));
        Test.make ~name:"eri:transform"
          (Staged.stage (fun () ->
               let ev = Lazy.force base_ev in
               ignore
                 (Postplace.Technique.empty_row_insertion base
                    ~hotspots:ev.Postplace.Flow.hotspots ~rows:16)));
        Test.make ~name:"place:hpwl-12k"
          (Staged.stage (fun () -> ignore (Place.Placement.hpwl base))) ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter (fun name v -> rows := (name, v) :: !rows) results;
  let kernels =
    List.filter_map
      (fun (name, v) ->
         match Analyze.OLS.estimates v with
         | Some [ ns ] ->
           Printf.printf "%-32s %12.0f ns/run (%9.3f ms)\n" name ns
             (ns /. 1.0e6);
           Some (name, j_f ns)
         | _ ->
           Printf.printf "%-32s (no estimate)\n" name;
           None)
      (List.sort compare !rows)
  in
  j_obj [ ("ns_per_run", j_obj kernels) ]

(* --- CG ENGINE -------------------------------------------------------------------- *)

(* Wall-clock comparison of the incremental/parallel solve engine against
   the seed behaviour (fresh assembly + cold Jacobi solve everywhere,
   quadratic plan append, sequential candidates). *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The seed's greedy_rows, reproduced verbatim as a baseline: quadratic
   [plan @ ...] growth, uncached mesh builds, cold solves, one extra final
   scoring solve. *)
let seed_greedy fl ~rows ~chunk ~stride ~coarse_nx =
  let peak_of pl =
    let cfg =
      { fl.Postplace.Flow.mesh_config with Thermal.Mesh.nx = coarse_nx;
        ny = coarse_nx }
    in
    let power =
      Power.Map.power_map pl ~per_cell_w:fl.Postplace.Flow.per_cell_w
        ~nx:coarse_nx ~ny:coarse_nx
    in
    let solution =
      Thermal.Mesh.solve (Thermal.Mesh.build ~cache:false cfg ~power)
    in
    (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid solution))
      .Thermal.Metrics.peak_rise_k
  in
  let evaluate after =
    let r =
      Postplace.Technique.apply_row_insertions
        fl.Postplace.Flow.base_placement after
    in
    peak_of r.Postplace.Technique.eri_placement
  in
  let base = fl.Postplace.Flow.base_placement in
  let num_rows = base.Place.Placement.fp.Place.Floorplan.num_rows in
  let candidates =
    let rec collect r acc = if r >= num_rows then List.rev acc
      else collect (r + stride) (r :: acc)
    in
    collect 0 []
  in
  let plan = ref [] in
  let remaining = ref rows in
  while !remaining > 0 do
    let step = min chunk !remaining in
    let best = ref None in
    List.iter
      (fun cand ->
         let trial = !plan @ List.init step (fun _ -> cand) in
         let peak = evaluate trial in
         match !best with
         | Some (_, best_peak) when best_peak <= peak -> ()
         | _ -> best := Some (cand, peak))
      candidates;
    (match !best with
     | Some (cand, _) -> plan := !plan @ List.init step (fun _ -> cand)
     | None -> assert false);
    remaining := !remaining - step
  done;
  let final =
    Postplace.Technique.apply_row_insertions base !plan
  in
  (final.Postplace.Technique.inserted_after,
   peak_of final.Postplace.Technique.eri_placement)

(* The cg and mg suites benchmark the *exact* candidate-evaluation path
   (their baselines predate fft screening), so they pin the screening tier
   to exact; the fft suite below measures the screening tier itself. *)
let exact_screen fl =
  { fl with Postplace.Flow.screen = Postplace.Flow.Screen_exact }

let run_cg () =
  header "CG ENGINE -- matrix cache, warm starts, preconditioning, domains"
    "n/a (engineering): incremental + parallel solve engine vs seed \
     behaviour";
  let saved_jobs = Parallel.Pool.jobs () in
  Obs.Metrics.reset ();
  let fl = exact_screen (Lazy.force flow1) in
  let base = fl.Postplace.Flow.base_placement in
  let cfg = fl.Postplace.Flow.mesh_config in
  let power =
    Power.Map.power_map base ~per_cell_w:fl.Postplace.Flow.per_cell_w ~nx:40
      ~ny:40
  in
  (* kernel timings: assembly cold vs cache hit *)
  Thermal.Mesh.cache_clear ();
  let _, t_asm_cold = time (fun () -> Thermal.Mesh.build ~cache:false cfg ~power) in
  let problem, _ = time (fun () -> Thermal.Mesh.build cfg ~power) in
  let cached, t_asm_hit = time (fun () -> Thermal.Mesh.build cfg ~power) in
  let reused =
    Thermal.Mesh.matrix problem == Thermal.Mesh.matrix cached
  in
  Printf.printf "mesh assembly: cold %.2f ms, cache hit %.2f ms (matrix \
                 physically reused: %b)\n"
    (t_asm_cold *. 1e3) (t_asm_hit *. 1e3) reused;
  (* solver variants on the 40x40x9 system *)
  Parallel.Pool.set_jobs 1;
  let cold, t_cold = time (fun () -> Thermal.Mesh.solve problem) in
  let ssor, t_ssor =
    time (fun () -> Thermal.Mesh.solve ~precond:(Thermal.Cg.Ssor 1.2) problem)
  in
  let warm, t_warm =
    time (fun () -> Thermal.Mesh.solve ~x0:cold.Thermal.Mesh.temp problem)
  in
  Printf.printf
    "solve 40x40x9: cold Jacobi %.2f ms (%d it), cold SSOR(1.2) %.2f ms \
     (%d it), warm Jacobi %.2f ms (%d it)\n"
    (t_cold *. 1e3) cold.Thermal.Mesh.cg_iterations
    (t_ssor *. 1e3) ssor.Thermal.Mesh.cg_iterations
    (t_warm *. 1e3) warm.Thermal.Mesh.cg_iterations;
  (* determinism across pool sizes *)
  Parallel.Pool.set_jobs 4;
  let cold4, t_cold4 = time (fun () -> Thermal.Mesh.solve problem) in
  let solve_identical = cold4.Thermal.Mesh.temp = cold.Thermal.Mesh.temp in
  Parallel.Pool.set_jobs 1;
  Printf.printf "solve with 4 domains: %.2f ms, bit-identical to 1 domain: %b\n"
    (t_cold4 *. 1e3) solve_identical;
  (* optimizer scenario: seed behaviour vs the engine, sequential and
     parallel *)
  let rows = 8 and coarse_nx = 40 in
  let (seed_plan, seed_peak), t_seed =
    time (fun () -> seed_greedy fl ~rows ~chunk:4 ~stride:4 ~coarse_nx)
  in
  Thermal.Mesh.cache_clear ();
  let r1, t_eng1 =
    time (fun () -> Postplace.Optimizer.greedy_rows fl ~rows ~coarse_nx ())
  in
  Parallel.Pool.set_jobs 4;
  Thermal.Mesh.cache_clear ();
  let r4, t_eng4 =
    time (fun () -> Postplace.Optimizer.greedy_rows fl ~rows ~coarse_nx ())
  in
  Parallel.Pool.set_jobs saved_jobs;
  let plan_of (r : Postplace.Optimizer.result) =
    r.Postplace.Optimizer.plan.Postplace.Technique.inserted_after
  in
  let parallel_identical =
    plan_of r1 = plan_of r4
    && r1.Postplace.Optimizer.predicted_peak_k
       = r4.Postplace.Optimizer.predicted_peak_k
  in
  let plans_agree = plan_of r1 = seed_plan in
  let speedup = t_seed /. t_eng1 in
  let speedup4 = t_seed /. t_eng4 in
  Printf.printf
    "optimizer (%d rows, %dx%d coarse grid):\n\
    \  seed behaviour        %8.1f ms  (peak %.3f K)\n\
    \  engine, 1 domain      %8.1f ms  (peak %.3f K)  speedup %.2fx\n\
    \  engine, 4 domains     %8.1f ms  (peak %.3f K)  speedup %.2fx\n"
    rows coarse_nx coarse_nx (t_seed *. 1e3) seed_peak (t_eng1 *. 1e3)
    r1.Postplace.Optimizer.predicted_peak_k speedup (t_eng4 *. 1e3)
    r4.Postplace.Optimizer.predicted_peak_k speedup4;
  Printf.printf "check: engine plan matches seed plan:            %b\n"
    plans_agree;
  Printf.printf "check: 4-domain run bit-identical to 1-domain:   %b\n"
    parallel_identical;
  Printf.printf "check: speedup >= 2x:                            %b\n"
    (speedup >= 2.0);
  j_obj
    [ ("kernel",
       j_obj
         [ ("assembly_cold_ms", j_f (t_asm_cold *. 1e3));
           ("assembly_cache_hit_ms", j_f (t_asm_hit *. 1e3));
           ("matrix_reused", j_b reused);
           ("cold_jacobi_ms", j_f (t_cold *. 1e3));
           ("cold_jacobi_iters", j_i cold.Thermal.Mesh.cg_iterations);
           ("cold_ssor_ms", j_f (t_ssor *. 1e3));
           ("cold_ssor_iters", j_i ssor.Thermal.Mesh.cg_iterations);
           ("warm_jacobi_ms", j_f (t_warm *. 1e3));
           ("warm_jacobi_iters", j_i warm.Thermal.Mesh.cg_iterations);
           ("solve_4domains_ms", j_f (t_cold4 *. 1e3));
           ("solve_bit_identical", j_b solve_identical) ]);
      ("optimizer",
       j_obj
         [ ("rows", j_i rows);
           ("coarse_nx", j_i coarse_nx);
           ("seed_ms", j_f (t_seed *. 1e3));
           ("engine_ms", j_f (t_eng1 *. 1e3));
           ("engine_4domains_ms", j_f (t_eng4 *. 1e3));
           ("speedup", j_f speedup);
           ("speedup_4domains", j_f speedup4);
           ("seed_peak_k", j_f seed_peak);
           ("engine_peak_k", j_f r1.Postplace.Optimizer.predicted_peak_k);
           ("plans_agree", j_b plans_agree);
           ("parallel_bit_identical", j_b parallel_identical) ]);
      ("telemetry",
       j_obj
         [ ("cold_iterations",
            hist_percentiles "thermal.cg.cold.iterations");
           ("warm_iterations",
            hist_percentiles "thermal.cg.warm.iterations") ]) ]

(* --- MG ENGINE --------------------------------------------------------------------- *)

(* Geometric-multigrid V-cycle preconditioner vs Jacobi / SSOR CG across
   mesh sizes, plus the two invariants the optimizer relies on when running
   under [Pc_mg]: greedy plans unchanged and bit-identical parallel runs. *)

let run_mg () =
  header "MG ENGINE -- geometric multigrid V-cycle preconditioner"
    "n/a (engineering): multigrid-preconditioned CG vs Jacobi/SSOR-CG \
     across mesh sizes";
  let saved_jobs = Parallel.Pool.jobs () in
  Obs.Metrics.reset ();
  let fl = exact_screen (Lazy.force flow1) in
  let base = fl.Postplace.Flow.base_placement in
  let problem_at nx =
    let cfg =
      { fl.Postplace.Flow.mesh_config with Thermal.Mesh.nx; ny = nx }
    in
    let power =
      Power.Map.power_map base ~per_cell_w:fl.Postplace.Flow.per_cell_w ~nx
        ~ny:nx
    in
    Thermal.Mesh.build cfg ~power
  in
  Parallel.Pool.set_jobs 1;
  let speedup_160 = ref 0.0 in
  let size_rows =
    List.map
      (fun nx ->
         Thermal.Mesh.cache_clear ();
         let problem = problem_at nx in
         let jac, t_jac = time (fun () -> Thermal.Mesh.solve problem) in
         let ssor, t_ssor =
           time (fun () ->
               Thermal.Mesh.solve ~precond:(Thermal.Cg.Ssor 1.2) problem)
         in
         let hier, t_build =
           time (fun () -> Thermal.Mesh.multigrid problem)
         in
         let mg, t_mg =
           time (fun () ->
               Thermal.Mesh.solve ~precond:(Thermal.Cg.Multigrid hier)
                 problem)
         in
         (* agreement with the SSOR solve, relative to the peak rise *)
         let scale =
           Array.fold_left
             (fun a v -> Float.max a (Float.abs v))
             0.0 ssor.Thermal.Mesh.temp
         in
         let max_rel = ref 0.0 in
         Array.iteri
           (fun i v ->
              max_rel :=
                Float.max !max_rel
                  (Float.abs (v -. mg.Thermal.Mesh.temp.(i)) /. scale))
           ssor.Thermal.Mesh.temp;
         let speedup = t_ssor /. t_mg in
         if nx = 160 then speedup_160 := speedup;
         Printf.printf
           "%3dx%-3d jacobi %8.1f ms (%4d it) | ssor %8.1f ms (%4d it) | \
            mg build %6.1f ms + solve %7.1f ms (%3d it, %d levels) | \
            speedup vs ssor %5.2fx | max-rel-diff %.2e\n"
           nx nx (t_jac *. 1e3) jac.Thermal.Mesh.cg_iterations
           (t_ssor *. 1e3) ssor.Thermal.Mesh.cg_iterations (t_build *. 1e3)
           (t_mg *. 1e3) mg.Thermal.Mesh.cg_iterations
           (Thermal.Multigrid.num_levels hier) speedup !max_rel;
         j_obj
           [ ("nx", j_i nx);
             ("jacobi_ms", j_f (t_jac *. 1e3));
             ("jacobi_iters", j_i jac.Thermal.Mesh.cg_iterations);
             ("ssor_ms", j_f (t_ssor *. 1e3));
             ("ssor_iters", j_i ssor.Thermal.Mesh.cg_iterations);
             ("mg_build_ms", j_f (t_build *. 1e3));
             ("mg_solve_ms", j_f (t_mg *. 1e3));
             ("mg_iters", j_i mg.Thermal.Mesh.cg_iterations);
             ("mg_levels", j_i (Thermal.Multigrid.num_levels hier));
             ("speedup_vs_ssor", j_f speedup);
             ("max_rel_diff_vs_ssor", j_f !max_rel) ])
      [ 40; 80; 160 ]
  in
  (* parallel determinism of the MG-preconditioned solve itself *)
  Thermal.Mesh.cache_clear ();
  let p80 = problem_at 80 in
  let h80 = Thermal.Mesh.multigrid p80 in
  let mg1 =
    Thermal.Mesh.solve ~precond:(Thermal.Cg.Multigrid h80) p80
  in
  Parallel.Pool.set_jobs 4;
  let mg4 =
    Thermal.Mesh.solve ~precond:(Thermal.Cg.Multigrid h80) p80
  in
  let solve_identical = mg1.Thermal.Mesh.temp = mg4.Thermal.Mesh.temp in
  (* optimizer invariants: same greedy plan with and without Pc_mg, and
     bit-identical across pool sizes under Pc_mg *)
  let rows = 8 in
  let plan_of (r : Postplace.Optimizer.result) =
    r.Postplace.Optimizer.plan.Postplace.Technique.inserted_after
  in
  Parallel.Pool.set_jobs 1;
  Thermal.Mesh.cache_clear ();
  let r_def = Postplace.Optimizer.greedy_rows fl ~rows () in
  let fl_mg =
    { fl with Postplace.Flow.mesh_precond = Some Thermal.Mesh.Pc_mg }
  in
  Thermal.Mesh.cache_clear ();
  let r_mg1 = Postplace.Optimizer.greedy_rows fl_mg ~rows () in
  Parallel.Pool.set_jobs 4;
  Thermal.Mesh.cache_clear ();
  let r_mg4 = Postplace.Optimizer.greedy_rows fl_mg ~rows () in
  Parallel.Pool.set_jobs saved_jobs;
  let plans_agree = plan_of r_def = plan_of r_mg1 in
  let parallel_identical =
    solve_identical
    && plan_of r_mg1 = plan_of r_mg4
    && r_mg1.Postplace.Optimizer.predicted_peak_k
       = r_mg4.Postplace.Optimizer.predicted_peak_k
  in
  Printf.printf "check: greedy plan under Pc_mg matches default:   %b\n"
    plans_agree;
  Printf.printf "check: MG runs bit-identical across pool sizes:   %b\n"
    parallel_identical;
  Printf.printf "check: speedup vs SSOR at 160x160 >= 2x:          %b \
                 (%.2fx)\n"
    (!speedup_160 >= 2.0) !speedup_160;
  j_obj
    [ ("sizes", j_list size_rows);
      ("speedup_vs_ssor_160", j_f !speedup_160);
      ("plans_agree", j_b plans_agree);
      ("parallel_bit_identical", j_b parallel_identical);
      ("telemetry",
       j_obj
         [ ("cold_iterations",
            hist_percentiles "thermal.cg.cold.iterations");
           ("vcycle_count",
            match Obs.Metrics.counter_value "thermal.mg.cycles" with
            | None -> Obs.Json.Null
            | Some n -> j_i n);
           ("vcycles_per_solve",
            hist_percentiles "thermal.mg.solve.cycles") ]) ]

(* --- FFT SCREENING ----------------------------------------------------------------- *)

(* Green's-function power blurring (Kemper et al.) as the O(n log n)
   screening tier: FFT parity against a naive DFT, kernel characterization
   cost, per-candidate blur vs warm MG-CG cost at 160x160, screening rank
   fidelity at the optimizer's grid, and end-to-end greedy_rows under
   Screen_fft vs Screen_exact. *)

let run_fft () =
  header "FFT SCREENING -- Green's-function power blurring tier"
    "n/a (engineering): FFT-blurred candidate ranking + exact leader \
     re-scoring vs all-exact evaluation";
  let saved_jobs = Parallel.Pool.jobs () in
  Obs.Metrics.reset ();
  let fl = exact_screen (Lazy.force flow1) in
  let base = fl.Postplace.Flow.base_placement in
  let num_rows = base.Place.Placement.fp.Place.Floorplan.num_rows in
  Parallel.Pool.set_jobs 1;
  (* FFT parity vs a naive O(n^2) DFT at radix-2 and Bluestein lengths *)
  let naive_dft re im =
    let n = Array.length re in
    let outr = Array.make n 0.0 and outi = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let sr = ref 0.0 and si = ref 0.0 in
      for t = 0 to n - 1 do
        let ang =
          -2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n
        in
        sr := !sr +. (re.(t) *. cos ang) -. (im.(t) *. sin ang);
        si := !si +. (re.(t) *. sin ang) +. (im.(t) *. cos ang)
      done;
      outr.(k) <- !sr;
      outi.(k) <- !si
    done;
    (outr, outi)
  in
  let parity_err n =
    let st = Random.State.make [| 1997; n |] in
    let re = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
    let im = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
    let dr, di = naive_dft re im in
    let fr = Array.copy re and fi = Array.copy im in
    Thermal.Fft.fft ~re:fr ~im:fi;
    let scale = ref 0.0 and err = ref 0.0 in
    for k = 0 to n - 1 do
      scale := Float.max !scale (Float.hypot dr.(k) di.(k));
      err :=
        Float.max !err (Float.hypot (fr.(k) -. dr.(k)) (fi.(k) -. di.(k)))
    done;
    !err /. !scale
  in
  let parity = List.map (fun n -> (n, parity_err n)) [ 8; 40; 60; 127 ] in
  let parity_max =
    List.fold_left (fun a (_, e) -> Float.max a e) 0.0 parity
  in
  List.iter
    (fun (n, e) -> Printf.printf "fft vs naive dft, n=%-3d: %.2e\n" n e)
    parity;
  Printf.printf "check: fft parity <= 1e-9:                       %b\n"
    (parity_max <= 1e-9);
  (* per-candidate cost at 160x160: one blurred peak vs one warm
     rank-tolerance MG-CG solve -- the two things the optimizer can spend
     on a candidate. Mirrors a greedy round: kernel and hierarchy built on
     the trial extent, solves warm-started from the base incumbent. *)
  let rank_tol = 1e-6 in
  let nx = 160 in
  let cfg160 =
    { fl.Postplace.Flow.mesh_config with Thermal.Mesh.nx; ny = nx }
  in
  let power_of ~nx after =
    let r = Postplace.Technique.apply_row_insertions base after in
    Power.Map.power_map r.Postplace.Technique.eri_placement
      ~per_cell_w:fl.Postplace.Flow.per_cell_w ~nx ~ny:nx
  in
  let chunk_plan cand = List.init 4 (fun _ -> cand) in
  let cands8 = List.init 8 (fun i -> i * max 1 (num_rows / 8)) in
  Thermal.Mesh.cache_clear ();
  let p_base = Thermal.Mesh.build cfg160 ~power:(power_of ~nx []) in
  let h_base = Thermal.Mesh.multigrid p_base in
  let inc =
    Thermal.Mesh.solve ~tol:rank_tol ~precond:(Thermal.Cg.Multigrid h_base)
      p_base
  in
  let p_first =
    Thermal.Mesh.build cfg160
      ~power:(power_of ~nx (chunk_plan (List.hd cands8)))
  in
  let hier, t_mg_build = time (fun () -> Thermal.Mesh.multigrid p_first) in
  let kernel, t_char = time (fun () -> Thermal.Mesh.blur p_first) in
  let sum_ex = ref 0.0 and sum_bl = ref 0.0 and err160 = ref 0.0 in
  List.iter
    (fun cand ->
       let power = power_of ~nx (chunk_plan cand) in
       let problem = Thermal.Mesh.build cfg160 ~power in
       let sol, t_ex =
         time (fun () ->
             Thermal.Mesh.solve ~tol:rank_tol
               ~precond:(Thermal.Cg.Multigrid hier)
               ~x0:inc.Thermal.Mesh.temp problem)
       in
       let bl, t_bl = time (fun () -> Thermal.Blur.peak kernel ~power) in
       let ex =
         (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid sol))
           .Thermal.Metrics.peak_rise_k
       in
       err160 := Float.max !err160 (Float.abs (bl -. ex) /. ex);
       sum_ex := !sum_ex +. t_ex;
       sum_bl := !sum_bl +. t_bl)
    cands8;
  let n8 = float_of_int (List.length cands8) in
  let exact_eval_ms = !sum_ex /. n8 *. 1e3 in
  let blur_eval_ms = !sum_bl /. n8 *. 1e3 in
  let per_cand_speedup = exact_eval_ms /. blur_eval_ms in
  Printf.printf
    "kernel at %dx%d: mg build %.1f ms, characterize %.1f ms\n\
     per-candidate: exact %.2f ms, blur %.2f ms, speedup %.1fx, max peak \
     rel err %.2e\n"
    nx nx (t_mg_build *. 1e3) (t_char *. 1e3) exact_eval_ms blur_eval_ms
    per_cand_speedup !err160;
  Printf.printf "check: per-candidate speedup >= 5x:              %b\n"
    (per_cand_speedup >= 5.0);
  (* screening rank fidelity: does the blurred ordering keep the exact
     winner inside the leader set the optimizer re-scores? *)
  let rank_nx = 40 in
  let cfg40 =
    { fl.Postplace.Flow.mesh_config with Thermal.Mesh.nx = rank_nx;
      ny = rank_nx }
  in
  Thermal.Mesh.cache_clear ();
  let p40 = Thermal.Mesh.build cfg40 ~power:(power_of ~nx:rank_nx []) in
  let h40b = Thermal.Mesh.multigrid p40 in
  let inc40 =
    Thermal.Mesh.solve ~tol:rank_tol ~precond:(Thermal.Cg.Multigrid h40b)
      p40
  in
  let cands40 =
    let rec collect r acc =
      if r >= num_rows then List.rev acc else collect (r + 4) (r :: acc)
    in
    collect 0 []
  in
  let first40 =
    Thermal.Mesh.build cfg40
      ~power:(power_of ~nx:rank_nx (chunk_plan (List.hd cands40)))
  in
  let h40 = Thermal.Mesh.multigrid first40 in
  let k40 = Thermal.Mesh.blur first40 in
  let scored =
    List.map
      (fun cand ->
         let power = power_of ~nx:rank_nx (chunk_plan cand) in
         let problem = Thermal.Mesh.build cfg40 ~power in
         let sol =
           Thermal.Mesh.solve ~tol:rank_tol
             ~precond:(Thermal.Cg.Multigrid h40)
             ~x0:inc40.Thermal.Mesh.temp problem
         in
         let ex =
           (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid sol))
             .Thermal.Metrics.peak_rise_k
         in
         (ex, Thermal.Blur.peak k40 ~power))
      cands40
  in
  (* rank.(i) = position of candidate i sorted ascending, ties by index *)
  let rank_positions scores =
    let sorted = List.sort compare (List.mapi (fun i s -> (s, i)) scores) in
    let pos = Array.make (List.length scores) 0 in
    List.iteri (fun r (_, i) -> pos.(i) <- r) sorted;
    pos
  in
  let ex_rank = rank_positions (List.map fst scored) in
  let bl_rank = rank_positions (List.map snd scored) in
  let max_disp = ref 0 and winner_blur_rank = ref 0 and err40 = ref 0.0 in
  Array.iteri
    (fun i r ->
       max_disp := max !max_disp (abs (r - bl_rank.(i)));
       if r = 0 then winner_blur_rank := bl_rank.(i))
    ex_rank;
  List.iter
    (fun (ex, bl) -> err40 := Float.max !err40 (Float.abs (bl -. ex) /. ex))
    scored;
  let leaders = 3 in
  Printf.printf
    "screening at %dx%d over %d candidates: exact winner at blur rank %d, \
     max rank displacement %d, max peak rel err %.2e\n"
    rank_nx rank_nx (List.length cands40) !winner_blur_rank !max_disp
    !err40;
  Printf.printf "check: exact winner within %d leaders:            %b\n"
    leaders (!winner_blur_rank < leaders);
  (* end-to-end: greedy_rows with fft screening vs the exact tier, cold
     (empty mesh cache) and warm (matrices, hierarchies and blur kernels
     already cached) *)
  let rows = 8 and chunk = 4 in
  let stride = max 1 (num_rows / 20) in
  let coarse_nx = 160 in
  let fl_mg =
    { fl with Postplace.Flow.mesh_precond = Some Thermal.Mesh.Pc_mg }
  in
  let fl_fft =
    { fl_mg with Postplace.Flow.screen = Postplace.Flow.Screen_fft }
  in
  let run f =
    Postplace.Optimizer.greedy_rows f ~rows ~chunk ~stride ~coarse_nx ()
  in
  Thermal.Mesh.cache_clear ();
  let r_ex_cold, t_ex_cold = time (fun () -> run fl_mg) in
  let r_ex_warm, t_ex_warm = time (fun () -> run fl_mg) in
  Thermal.Mesh.cache_clear ();
  let r_ff_cold, t_ff_cold = time (fun () -> run fl_fft) in
  let r_ff_warm, t_ff_warm = time (fun () -> run fl_fft) in
  Parallel.Pool.set_jobs saved_jobs;
  let plan_of (r : Postplace.Optimizer.result) =
    r.Postplace.Optimizer.plan.Postplace.Technique.inserted_after
  in
  let plans_agree =
    plan_of r_ff_cold = plan_of r_ex_cold
    && plan_of r_ff_warm = plan_of r_ex_warm
  in
  let peaks_identical =
    r_ff_warm.Postplace.Optimizer.predicted_peak_k
    = r_ex_warm.Postplace.Optimizer.predicted_peak_k
  in
  let speedup_cold = t_ex_cold /. t_ff_cold in
  let speedup_warm = t_ex_warm /. t_ff_warm in
  Printf.printf
    "optimizer (%d rows, stride %d, %dx%d grid):\n\
    \  exact tier  cold %8.1f ms   warm %8.1f ms  (%d solves)\n\
    \  fft tier    cold %8.1f ms   warm %8.1f ms  (%d solves + %d blurs)\n\
    \  speedup     cold %.2fx  warm %.2fx\n"
    rows stride coarse_nx coarse_nx (t_ex_cold *. 1e3) (t_ex_warm *. 1e3)
    r_ex_warm.Postplace.Optimizer.evaluations (t_ff_cold *. 1e3)
    (t_ff_warm *. 1e3) r_ff_warm.Postplace.Optimizer.evaluations
    r_ff_warm.Postplace.Optimizer.blur_evaluations speedup_cold
    speedup_warm;
  Printf.printf "check: fft and exact tiers pick the same plan:   %b\n"
    plans_agree;
  Printf.printf "check: end-to-end speedup (warm) >= 2x:          %b\n"
    (speedup_warm >= 2.0);
  let counter name =
    match Obs.Metrics.counter_value name with
    | None -> Obs.Json.Null
    | Some n -> j_i n
  in
  j_obj
    [ ("fft_parity",
       j_obj
         [ ("sizes", j_list (List.map (fun (n, _) -> j_i n) parity));
           ("max_rel_err", j_f parity_max);
           ("within_1e9", j_b (parity_max <= 1e-9)) ]);
      ("kernel",
       j_obj
         [ ("nx", j_i nx);
           ("mg_build_ms", j_f (t_mg_build *. 1e3));
           ("characterize_ms", j_f (t_char *. 1e3));
           ("exact_eval_ms", j_f exact_eval_ms);
           ("blur_eval_ms", j_f blur_eval_ms);
           ("per_candidate_speedup", j_f per_cand_speedup);
           ("max_peak_rel_err", j_f !err160) ]);
      ("screening",
       j_obj
         [ ("nx", j_i rank_nx);
           ("candidates", j_i (List.length cands40));
           ("leaders", j_i leaders);
           ("winner_blur_rank", j_i !winner_blur_rank);
           ("max_rank_displacement", j_i !max_disp);
           ("max_peak_rel_err", j_f !err40);
           ("winner_within_leaders", j_b (!winner_blur_rank < leaders)) ]);
      ("optimizer",
       j_obj
         [ ("rows", j_i rows);
           ("stride", j_i stride);
           ("coarse_nx", j_i coarse_nx);
           ("exact_cold_ms", j_f (t_ex_cold *. 1e3));
           ("exact_warm_ms", j_f (t_ex_warm *. 1e3));
           ("fft_cold_ms", j_f (t_ff_cold *. 1e3));
           ("fft_warm_ms", j_f (t_ff_warm *. 1e3));
           ("speedup_cold", j_f speedup_cold);
           ("speedup_warm", j_f speedup_warm);
           ("exact_evaluations", j_i r_ex_warm.Postplace.Optimizer.evaluations);
           ("fft_evaluations", j_i r_ff_warm.Postplace.Optimizer.evaluations);
           ("fft_blur_evaluations",
            j_i r_ff_warm.Postplace.Optimizer.blur_evaluations);
           ("exact_peak_k",
            j_f r_ex_warm.Postplace.Optimizer.predicted_peak_k);
           ("fft_peak_k", j_f r_ff_warm.Postplace.Optimizer.predicted_peak_k);
           ("plans_agree", j_b plans_agree);
           ("peaks_identical", j_b peaks_identical) ]);
      ("telemetry",
       j_obj
         [ ("fft_radix2", counter "thermal.fft.radix2");
           ("fft_bluestein", counter "thermal.fft.bluestein");
           ("blur_kernels", counter "thermal.blur.kernels");
           ("blur_evals", counter "thermal.blur.evals");
           ("cache_evictions", counter "thermal.mesh.cache.evictions") ]) ]

(* --- ADJOINT SENSITIVITY ------------------------------------------------------------ *)

(* The gradient guide's economics: one adjoint solve prices every
   candidate at once, where the greedy peak guide pays a rank-tolerance
   solve per chunk. Validates the adjoint against a superposition
   central difference, times adjoint vs forward cost, then runs the
   optimizer head-to-head at the production 160x160 grid. *)

let run_adjoint () =
  header "ADJOINT SENSITIVITY -- gradient-guided whitespace allocation"
    "n/a (engineering): adjoint-priced candidate ranking vs per-chunk \
     exact evaluation";
  let saved_jobs = Parallel.Pool.jobs () in
  Obs.Metrics.reset ();
  let fl = exact_screen (Lazy.force flow1) in
  let base = fl.Postplace.Flow.base_placement in
  let num_rows = base.Place.Placement.fp.Place.Floorplan.num_rows in
  Parallel.Pool.set_jobs 1;
  (* forward vs adjoint cost and a finite-difference spot check at 40x40 *)
  let nx = 40 in
  let cfg40 =
    { fl.Postplace.Flow.mesh_config with Thermal.Mesh.nx; ny = nx }
  in
  let power40 =
    Power.Map.power_map base ~per_cell_w:fl.Postplace.Flow.per_cell_w ~nx
      ~ny:nx
  in
  Thermal.Mesh.cache_clear ();
  let problem = Thermal.Mesh.build cfg40 ~power:power40 in
  let precond = Thermal.Cg.Multigrid (Thermal.Mesh.multigrid problem) in
  let fwd, t_fwd = time (fun () -> Thermal.Mesh.solve ~precond problem) in
  let adj, t_adj =
    time (fun () -> Thermal.Adjoint.solve ~precond ~forward:fwd problem)
  in
  (* superposition central difference at the most sensitive tile: the
     system is linear, so the perturbed field is T0 +/- eps u with
     u = G^-1 e_tile solved once (same trick as the unit tests) *)
  let fd_rel =
    let zp = cfg40.Thermal.Mesh.stack.Thermal.Stack.power_layer in
    let ix, iy = Geo.Grid.argmax adj.Thermal.Adjoint.sensitivity in
    let e = Array.make (Array.length adj.Thermal.Adjoint.lambda) 0.0 in
    e.(Thermal.Mesh.node_index cfg40 ~ix ~iy ~iz:zp) <- 1.0;
    let u = Thermal.Mesh.solve ~precond (Thermal.Mesh.with_rhs problem e) in
    let shifted s =
      Thermal.Adjoint.smoothed_peak ~sharpness:adj.Thermal.Adjoint.sharpness
        { fwd with
          Thermal.Mesh.temp =
            Array.mapi
              (fun i t -> t +. (s *. u.Thermal.Mesh.temp.(i)))
              fwd.Thermal.Mesh.temp }
    in
    (* smaller step than the unit tests: at 40x40 the impulse response u
       is large enough that beta^2 (eps u)^2 truncation dominates at
       eps = 1e-5; the analytic evaluation tolerates the smaller step *)
    let eps = 1e-7 in
    let fd = (shifted eps -. shifted (-.eps)) /. (2.0 *. eps) in
    let sens = Geo.Grid.get adj.Thermal.Adjoint.sensitivity ~ix ~iy in
    Float.abs (fd -. sens) /. Float.max (Float.abs fd) 1e-30
  in
  let adjoint_vs_forward = t_adj /. t_fwd in
  Printf.printf
    "at %dx%d: forward %.1f ms (%d iters), adjoint %.1f ms (%d iters), \
     ratio %.2fx\n\
     fd spot check at argmax tile: rel err %.2e\n"
    nx nx (t_fwd *. 1e3) fwd.Thermal.Mesh.cg_iterations (t_adj *. 1e3)
    adj.Thermal.Adjoint.cg_iterations adjoint_vs_forward fd_rel;
  Printf.printf "check: adjoint matches fd to 1e-6:               %b\n"
    (fd_rel <= 1e-6);
  (* head-to-head at the production grid: exact greedy (peak guide, exact
     screen) vs the gradient guide, cold and warm *)
  let rows = 8 and chunk = 4 in
  let stride = max 1 (num_rows / 20) in
  let coarse_nx = 160 in
  let fl_mg =
    { fl with Postplace.Flow.mesh_precond = Some Thermal.Mesh.Pc_mg }
  in
  let fl_grad =
    { fl_mg with Postplace.Flow.guide = Postplace.Flow.Guide_gradient }
  in
  let run f =
    Postplace.Optimizer.greedy_rows f ~rows ~chunk ~stride ~coarse_nx ()
  in
  Thermal.Mesh.cache_clear ();
  let r_gr_cold, t_gr_cold = time (fun () -> run fl_mg) in
  let r_gr_warm, t_gr_warm = time (fun () -> run fl_mg) in
  Thermal.Mesh.cache_clear ();
  let r_ad_cold, t_ad_cold = time (fun () -> run fl_grad) in
  let r_ad_warm, t_ad_warm = time (fun () -> run fl_grad) in
  Parallel.Pool.set_jobs saved_jobs;
  let greedy_evals = r_gr_warm.Postplace.Optimizer.evaluations in
  let grad_evals = r_ad_warm.Postplace.Optimizer.evaluations in
  let grad_adjoints = r_ad_warm.Postplace.Optimizer.adjoint_evaluations in
  let grad_total = grad_evals + grad_adjoints in
  let solve_ratio = float_of_int greedy_evals /. float_of_int grad_total in
  let solve_ratio_ge_3x = greedy_evals >= 3 * grad_total in
  let peak_gr = r_gr_warm.Postplace.Optimizer.predicted_peak_k in
  let peak_ad = r_ad_warm.Postplace.Optimizer.predicted_peak_k in
  let peak_delta = peak_ad -. peak_gr in
  let peak_within_tol = peak_delta <= 0.05 in
  let speedup_cold = t_gr_cold /. t_ad_cold in
  let speedup_warm = t_gr_warm /. t_ad_warm in
  Printf.printf
    "optimizer (%d rows, stride %d, %dx%d grid):\n\
    \  greedy (peak guide)  cold %8.1f ms   warm %8.1f ms  (%d solves)\n\
    \  gradient guide       cold %8.1f ms   warm %8.1f ms  (%d solves + %d \
     adjoints)\n\
    \  speedup              cold %.2fx  warm %.2fx   solve ratio %.1fx\n\
    \  peak: greedy %.4f K, gradient %.4f K (delta %+.4f K)\n"
    rows stride coarse_nx coarse_nx (t_gr_cold *. 1e3) (t_gr_warm *. 1e3)
    greedy_evals (t_ad_cold *. 1e3) (t_ad_warm *. 1e3) grad_evals
    grad_adjoints speedup_cold speedup_warm solve_ratio peak_gr peak_ad
    peak_delta;
  Printf.printf "check: >= 3x fewer exact solves:                 %b\n"
    solve_ratio_ge_3x;
  Printf.printf "check: gradient peak within +0.05 K of greedy:   %b\n"
    peak_within_tol;
  let counter name =
    match Obs.Metrics.counter_value name with
    | None -> Obs.Json.Null
    | Some n -> j_i n
  in
  ignore r_gr_cold;
  ignore r_ad_cold;
  j_obj
    [ ("adjoint_solve",
       j_obj
         [ ("nx", j_i nx);
           ("forward_ms", j_f (t_fwd *. 1e3));
           ("adjoint_ms", j_f (t_adj *. 1e3));
           ("adjoint_vs_forward", j_f adjoint_vs_forward);
           ("forward_iterations", j_i fwd.Thermal.Mesh.cg_iterations);
           ("adjoint_iterations", j_i adj.Thermal.Adjoint.cg_iterations);
           ("fd_rel_err", j_f fd_rel);
           ("fd_within_1e6", j_b (fd_rel <= 1e-6)) ]);
      ("optimizer",
       j_obj
         [ ("rows", j_i rows);
           ("stride", j_i stride);
           ("coarse_nx", j_i coarse_nx);
           ("greedy_cold_ms", j_f (t_gr_cold *. 1e3));
           ("greedy_warm_ms", j_f (t_gr_warm *. 1e3));
           ("gradient_cold_ms", j_f (t_ad_cold *. 1e3));
           ("gradient_warm_ms", j_f (t_ad_warm *. 1e3));
           ("speedup_cold", j_f speedup_cold);
           ("speedup_warm", j_f speedup_warm);
           ("greedy_evaluations", j_i greedy_evals);
           ("gradient_evaluations", j_i grad_evals);
           ("gradient_adjoint_evaluations", j_i grad_adjoints);
           ("solve_ratio", j_f solve_ratio);
           ("solve_ratio_ge_3x", j_b solve_ratio_ge_3x);
           ("greedy_peak_k", j_f peak_gr);
           ("gradient_peak_k", j_f peak_ad);
           ("peak_delta_k", j_f peak_delta);
           ("peak_within_tol", j_b peak_within_tol) ]);
      ("telemetry",
       j_obj
         [ ("adjoint_solves", counter "thermal.adjoint.solves");
           ("adjoint_iterations", counter "thermal.adjoint.iterations");
           ("optimizer_adjoint_solves", counter "optimizer.adjoint_solves");
           ("cache_evictions", counter "thermal.mesh.cache.evictions") ]) ]

(* --- serve: batch server throughput and fault isolation ----------------- *)

(* The batch server's two load-bearing claims, measured:
   - same-fingerprint batching: N jobs sharing a config pay one flow
     prepare (mesh + multigrid + blur state) instead of N, so a batched
     run must beat a one-process-per-job baseline that cold-prepares
     every job;
   - fault isolation: adding one poisoned job to the batch changes
     nothing — bit for bit — about its mates' result payloads, and the
     poisoned job itself fails with the structured invariant exit. *)
let run_serve () =
  header "BATCH SERVE -- same-fingerprint batching, fault isolation, retry"
    "n/a (engineering): thermoplace serve vs one process per job";
  let n_jobs = 6 in
  let job ?(extra = "") id =
    Printf.sprintf
      {|{"id":"%s","test_set":"small","technique":"eri","cycles":600%s}|} id
      extra
  in
  let clean_lines = List.init n_jobs (fun i -> job (Printf.sprintf "j%d" i)) in
  let serve_config =
    { Serve.Server.default_config with
      Serve.Server.ledger = None;
      handle_sigterm = false }
  in
  (* One in-process server round trip over [lines]: write the request
     file, serve it to EOF, read the response lines back. *)
  let run_server lines =
    let in_path = Filename.temp_file "bench_serve_in" ".jsonl" in
    let out_path = Filename.temp_file "bench_serve_out" ".jsonl" in
    Fun.protect
      ~finally:(fun () ->
        Sys.remove in_path;
        Sys.remove out_path)
      (fun () ->
        let oc = open_out in_path in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        close_out oc;
        let fd = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
        let out_ch = open_out out_path in
        let summary =
          Fun.protect
            ~finally:(fun () ->
              Unix.close fd;
              close_out out_ch)
            (fun () ->
              Serve.Server.run ~config:serve_config ~input:fd ~output:out_ch
                ())
        in
        let ic = open_in out_path in
        let responses = ref [] in
        (try
           while true do
             responses := input_line ic :: !responses
           done
         with End_of_file -> ());
        close_in ic;
        (summary, List.rev !responses))
  in
  let parse_responses lines =
    List.filter_map
      (fun l ->
        match Obs.Json.of_string l with
        | Ok json ->
          Option.bind (Obs.Json.member "id" json) Obs.Json.to_string_opt
          |> Option.map (fun id -> (id, json))
        | Error _ -> None)
      lines
  in
  let field resp id name =
    Option.bind (List.assoc_opt id resp) (Obs.Json.member name)
  in
  let outcome resp id =
    match Option.bind (field resp id "outcome") Obs.Json.to_string_opt with
    | Some o -> o
    | None -> "missing"
  in
  (* Warm the global mesh/blur caches once so the timed batched run
     measures steady-state serving, then time it against the per-job
     baseline where every job pays a cold prepare (one process per job
     shares nothing, hence the cache_clear between jobs). *)
  Thermal.Mesh.cache_clear ();
  ignore (run_server clean_lines);
  let (batched_summary, batched_raw), t_batched =
    time (fun () -> run_server clean_lines)
  in
  let (_ : (Serve.Server.summary * string list) list), t_per_job =
    time (fun () ->
        List.map
          (fun l ->
            Thermal.Mesh.cache_clear ();
            run_server [ l ])
          clean_lines)
  in
  let batched = parse_responses batched_raw in
  let all_ok =
    List.length batched = n_jobs
    && List.for_all (fun (id, _) -> outcome batched id = "ok") batched
  in
  let single_batch = batched_summary.Serve.Server.batches = 1 in
  let speedup = t_per_job /. t_batched in
  (* Fault isolation: re-run the same file plus one nan_power-poisoned
     mate with an identical config (same fingerprint, so it joins the
     batch). The clean jobs' deterministic [result] payloads must be
     bit-identical to the fault-free run; the mate alone fails. *)
  let poisoned_lines =
    clean_lines @ [ job ~extra:{|,"faults":"nan_power"|} "poisoned" ]
  in
  let _, poisoned_raw = run_server poisoned_lines in
  let with_fault = parse_responses poisoned_raw in
  let result_str resp id =
    match field resp id "result" with
    | Some j -> Obs.Json.to_string j
    | None -> "missing:" ^ id
  in
  let mates_identical =
    List.for_all
      (fun (id, _) -> result_str batched id = result_str with_fault id)
      batched
  in
  let fault_exit =
    match Option.bind (field with_fault "poisoned" "exit_code") Obs.Json.to_int with
    | Some c -> c
    | None -> -1
  in
  let fault_isolated =
    mates_identical
    && outcome with_fault "poisoned" = "failed"
    && fault_exit = 11
  in
  (* Retry: a transient cg_stall:8 under the default policy (2 retries)
     recovers on the clean second attempt; with retries disabled the
     same job fails with the solver-divergence exit. *)
  let _, retry_raw =
    run_server
      [ job ~extra:{|,"faults":"cg_stall:8","max_retries":2|} "transient";
        job ~extra:{|,"faults":"cg_stall:8","max_retries":0|} "hopeless" ]
  in
  let retry = parse_responses retry_raw in
  let attempts id =
    match Option.bind (field retry id "attempts") Obs.Json.to_int with
    | Some n -> n
    | None -> -1
  in
  let retry_recovers =
    outcome retry "transient" = "ok" && attempts "transient" = 2
  in
  let no_retry_fails =
    outcome retry "hopeless" = "failed" && attempts "hopeless" = 1
  in
  Printf.printf
    "serve (%d same-fingerprint jobs, eri on small):\n\
    \  batched     %8.1f ms  (%d batch%s)\n\
    \  per-job     %8.1f ms  (cold prepare per job)\n\
    \  speedup     %.2fx\n"
    n_jobs (t_batched *. 1e3) batched_summary.Serve.Server.batches
    (if single_batch then "" else "es")
    (t_per_job *. 1e3) speedup;
  Printf.printf "check: all %d batched jobs succeed:              %b\n" n_jobs
    all_ok;
  Printf.printf "check: batching speedup >= 1.5x:                 %b\n"
    (speedup >= 1.5);
  Printf.printf "check: mates bit-identical around a fault:       %b\n"
    mates_identical;
  Printf.printf "check: poisoned job fails structured (exit 11):  %b\n"
    (fault_exit = 11);
  Printf.printf "check: transient fault recovered by retry:       %b\n"
    retry_recovers;
  Printf.printf "check: retry disabled -> structured failure:     %b\n"
    no_retry_fails;
  j_obj
    [ ("batching",
       j_obj
         [ ("jobs", j_i n_jobs);
           ("batches", j_i batched_summary.Serve.Server.batches);
           ("batched_ms", j_f (t_batched *. 1e3));
           ("per_job_ms", j_f (t_per_job *. 1e3));
           ("batching_speedup", j_f speedup);
           ("all_ok", j_b all_ok);
           ("single_batch", j_b single_batch);
           ("speedup_ok", j_b (speedup >= 1.5)) ]);
      ("fault_isolation",
       j_obj
         [ ("mates_identical", j_b mates_identical);
           ("fault_exit_code", j_i fault_exit);
           ("fault_isolated", j_b fault_isolated) ]);
      ("retry",
       j_obj
         [ ("transient_attempts", j_i (attempts "transient"));
           ("retry_recovers", j_b retry_recovers);
           ("no_retry_fails", j_b no_retry_fails) ]) ]

(* --- dispatch ---------------------------------------------------------------------- *)

let experiments =
  [ ("fig5", run_fig5); ("fig6", run_fig6); ("table1", run_table1);
    ("timing", run_timing); ("congestion", run_congestion);
    ("ablation", run_ablation); ("optimizer", run_optimizer);
    ("electrothermal", run_electrothermal); ("package", run_package);
    ("baselines", run_baselines); ("glitch", run_glitch);
    ("guide", run_guide); ("transient", run_transient) ]

(* --- trial statistics --------------------------------------------------- *)

let is_time_key k =
  let n = String.length k in
  n >= 3 && String.sub k (n - 3) 3 = "_ms"

(* Nearest-rank quantile of a sorted array. *)
let quantile a q =
  let n = Array.length a in
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

(* Merge N structurally-identical trial summaries: "_ms" leaves become
   {median, min, max, iqr, trials} statistics objects, booleans are
   ANDed (one flaky false must still trip the gate), everything else
   keeps the first trial's value. Shapes recurse; a list whose length
   varies across trials falls back to the first trial verbatim. *)
let rec merge_trials key vals =
  match vals with
  | [] -> Obs.Json.Null
  | first :: _ ->
    let floats = List.map Obs.Json.to_float vals in
    if is_time_key key && List.for_all Option.is_some floats then begin
      let a = Array.of_list (List.map Option.get floats) in
      Array.sort compare a;
      let n = Array.length a in
      j_obj
        [ ("median", j_f (quantile a 0.50));
          ("min", j_f a.(0));
          ("max", j_f a.(n - 1));
          ("iqr", j_f (quantile a 0.75 -. quantile a 0.25));
          ("trials", j_i n) ]
    end
    else
      match first with
      | Obs.Json.Obj fields ->
        Obs.Json.Obj
          (List.map
             (fun (k, _) ->
                (k, merge_trials k (List.filter_map (Obs.Json.member k) vals)))
             fields)
      | Obs.Json.List items ->
        let lists = List.filter_map Obs.Json.to_list vals in
        if
          List.length lists = List.length vals
          && List.for_all
               (fun l -> List.length l = List.length items)
               lists
        then
          Obs.Json.List
            (List.mapi
               (fun i _ -> merge_trials key (List.map (fun l -> List.nth l i) lists))
               items)
        else first
      | Obs.Json.Bool _ ->
        Obs.Json.Bool
          (List.for_all
             (function Obs.Json.Bool b -> b | _ -> true)
             vals)
      | v -> v

let trials = ref 1

(* Runs an experiment --trials times and writes the (merged) summary to
   BENCH_<name>.json alongside the text table, so downstream tooling can
   diff runs without scraping stdout; appends one ledger record per
   suite so the perf trajectory accumulates across invocations. *)
let run_and_emit (name, f) =
  let t0 = Unix.gettimeofday () in
  let summaries = List.init !trials (fun _ -> f ()) in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let summary =
    match summaries with
    | [ one ] -> one
    | many -> merge_trials "summary" many
  in
  let path = Printf.sprintf "BENCH_%s.json" name in
  let json =
    Obs.Json.Obj
      [ ("experiment", j_s name); ("trials", j_i !trials);
        ("summary", summary) ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[wrote %s]\n" path;
  match Obs.Ledger.resolve_path () with
  | None -> ()
  | Some ledger ->
    let record =
      Obs.Ledger.make_record
        ~command:("bench:" ^ name)
        ~fingerprint:
          (Printf.sprintf "bench=%s|trials=%d|jobs=%d" name !trials
             (Parallel.Pool.jobs ()))
        ~config:
          [ ("experiment", j_s name); ("trials", j_i !trials);
            ("jobs", j_i (Parallel.Pool.jobs ())) ]
        ~phases_ms:[ ("bench_ms", elapsed_ms); ("total_ms", elapsed_ms) ]
        ~metrics:(Obs.Metrics.summary_json ()) ~outcome:"ok" ~exit_code:0 ()
    in
    (try Obs.Ledger.append ~path:ledger record
     with e ->
       Printf.eprintf "bench: cannot append to ledger %s: %s\n" ledger
         (Printexc.to_string e))

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --jobs N / --trials N anywhere on the line *)
  let rec strip_opts = function
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some k when k >= 1 ->
         Parallel.Pool.set_jobs k;
         strip_opts rest
       | _ ->
         Printf.eprintf "--jobs expects an integer >= 1, got %S\n" n;
         exit 2)
    | "--trials" :: n :: rest ->
      (match int_of_string_opt n with
       | Some k when k >= 1 ->
         trials := k;
         strip_opts rest
       | _ ->
         Printf.eprintf "--trials expects an integer >= 1, got %S\n" n;
         exit 2)
    | x :: rest -> x :: strip_opts rest
    | [] -> []
  in
  match strip_opts args with
  | [] | [ "all" ] -> List.iter run_and_emit experiments
  | [ "perf" ] -> run_and_emit ("perf", run_perf)
  | [ "cg" ] -> run_and_emit ("cg", run_cg)
  | [ "mg" ] -> run_and_emit ("mg", run_mg)
  | [ "fft" ] -> run_and_emit ("fft", run_fft)
  | [ "adjoint" ] -> run_and_emit ("adjoint", run_adjoint)
  | [ "serve" ] -> run_and_emit ("serve", run_serve)
  | [ name ] when List.mem_assoc name experiments ->
    run_and_emit (name, List.assoc name experiments)
  | other ->
    Printf.eprintf
      "unknown experiment %s; expected one of all, perf, cg, mg, fft, \
       adjoint, serve, %s\n"
      (String.concat " " other)
      (String.concat ", " (List.map fst experiments));
    exit 2
